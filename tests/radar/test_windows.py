"""Window functions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radar import window_by_name, WINDOWS
from repro.radar.windows import hanning, hamming, blackman, rectangular, taylor


class TestShapes:
    @pytest.mark.parametrize("name", sorted(set(WINDOWS)))
    @pytest.mark.parametrize("length", [1, 2, 5, 64, 125])
    def test_length_and_positivity(self, name, length):
        w = window_by_name(name, length)
        assert w.shape == (length,)
        assert np.all(w >= 0)
        assert np.all(w <= 1.0 + 1e-12)

    @pytest.mark.parametrize("fn", [hanning, hamming, blackman])
    def test_symmetry(self, fn):
        w = fn(64)
        assert np.allclose(w, w[::-1])

    def test_rectangular_is_ones(self):
        assert np.all(rectangular(10) == 1.0)

    def test_hanning_matches_matlab_convention(self):
        # MATLAB hanning(N) has nonzero endpoints: sin^2(pi*k/(N+1)).
        w = hanning(5)
        n = np.arange(1, 6)
        assert np.allclose(w, 0.5 * (1 - np.cos(2 * np.pi * n / 6)))
        assert w[0] > 0.0

    def test_hanning_peak_near_one(self):
        w = hanning(125)
        assert w.max() == pytest.approx(1.0, abs=1e-3)


class TestSidelobes:
    def test_hanning_suppresses_sidelobes_vs_rect(self):
        # The paper: windows "control sidelobe levels" at the cost of
        # mainlobe width.  Check the first sidelobe of the DFT.
        n = 125
        pad = 4096
        for fn, max_sidelobe_db in ((rectangular, -12.0), (hanning, -30.0)):
            spectrum = np.abs(np.fft.rfft(fn(n), pad))
            spectrum /= spectrum[0]
            # Find the first local minimum, then the peak after it.
            idx = 1
            while spectrum[idx + 1] < spectrum[idx]:
                idx += 1
            sidelobe = spectrum[idx:].max()
            assert 20 * np.log10(sidelobe) < max_sidelobe_db


class TestTaylor:
    def test_peak_sidelobe_matches_design(self):
        """A 30 dB Taylor design must produce ~-30 dB near-in sidelobes."""
        w = taylor(125, nbar=4, sidelobe_db=30.0)
        spectrum = np.abs(np.fft.rfft(w, 8192))
        spectrum /= spectrum[0]
        idx = 1
        while spectrum[idx + 1] < spectrum[idx]:
            idx += 1
        peak_sidelobe_db = 20 * np.log10(spectrum[idx:].max())
        assert peak_sidelobe_db == pytest.approx(-30.0, abs=1.5)

    def test_deeper_design_lowers_sidelobes(self):
        def psl(sidelobe_db):
            w = taylor(125, nbar=5, sidelobe_db=sidelobe_db)
            s = np.abs(np.fft.rfft(w, 8192))
            s /= s[0]
            i = 1
            while s[i + 1] < s[i]:
                i += 1
            return 20 * np.log10(s[i:].max())

        assert psl(40.0) < psl(25.0) - 10.0

    def test_symmetric_and_normalized(self):
        w = taylor(64)
        assert np.allclose(w, w[::-1])
        assert w.max() == pytest.approx(1.0)
        assert np.all(w > 0)

    def test_degenerate_and_invalid(self):
        assert np.array_equal(taylor(1), np.ones(1))
        with pytest.raises(ConfigurationError):
            taylor(10, nbar=0)
        with pytest.raises(ConfigurationError):
            taylor(10, sidelobe_db=-5.0)

    def test_registered_by_name(self):
        assert np.allclose(window_by_name("taylor", 32), taylor(32))


class TestLookup:
    def test_aliases(self):
        assert np.allclose(window_by_name("hann", 10), window_by_name("hanning", 10))
        assert np.allclose(window_by_name("rect", 10), window_by_name("rectangular", 10))

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            window_by_name("kaiser", 10)

    def test_zero_length_rejected(self):
        with pytest.raises(ConfigurationError):
            window_by_name("hanning", 0)
