"""Cube archive save/load and file-backed streams."""

import numpy as np
import pytest

from repro import CPIStream, RadarScenario, STAPParams, TargetTruth
from repro.errors import ConfigurationError
from repro.radar.io import FileCPIStream, load_cubes, save_cubes


@pytest.fixture
def cubes():
    params = STAPParams.tiny()
    scenario = RadarScenario(
        clutter_to_noise_db=30.0,
        targets=(TargetTruth(20, 0.25, 0.0, 5.0),),
        seed=4,
    )
    return CPIStream(params, scenario).take(3)


class TestRoundTrip:
    def test_data_bit_identical(self, cubes, tmp_path):
        path = tmp_path / "run.npz"
        save_cubes(path, cubes)
        loaded = load_cubes(path)
        assert len(loaded) == 3
        for a, b in zip(cubes, loaded):
            assert np.array_equal(a.data, b.data)
            assert a.cpi_index == b.cpi_index
            assert a.azimuth == b.azimuth

    def test_params_and_truth_preserved(self, cubes, tmp_path):
        path = tmp_path / "run.npz"
        save_cubes(path, cubes)
        loaded = load_cubes(path)
        assert loaded[0].params == cubes[0].params
        assert loaded[0].truth == cubes[0].truth

    def test_empty_save_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_cubes(tmp_path / "x.npz", [])

    def test_mixed_params_rejected(self, cubes, tmp_path):
        other = CPIStream(STAPParams.small(), RadarScenario.benign(0)).take(1)
        with pytest.raises(ConfigurationError):
            save_cubes(tmp_path / "x.npz", cubes + other)

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.arange(3))
        with pytest.raises(ConfigurationError):
            load_cubes(path)


class TestFileStream:
    def test_replay_matches_original(self, cubes, tmp_path):
        path = tmp_path / "run.npz"
        save_cubes(path, cubes)
        stream = FileCPIStream(path)
        assert len(stream) == 3
        assert np.array_equal(stream.cube(1).data, cubes[1].data)
        taken = stream.take(2)
        assert [c.cpi_index for c in taken] == [0, 1]

    def test_missing_index_rejected(self, cubes, tmp_path):
        path = tmp_path / "run.npz"
        save_cubes(path, cubes)
        with pytest.raises(ConfigurationError):
            FileCPIStream(path).cube(99)

    def test_reference_runs_on_replayed_stream(self, cubes, tmp_path):
        """Replayed data is processable and deterministic end to end."""
        from repro import SequentialSTAP

        path = tmp_path / "run.npz"
        save_cubes(path, cubes)
        stream = FileCPIStream(path)
        first = SequentialSTAP(stream.params).process_stream(stream.take(3))
        second = SequentialSTAP(stream.params).process_stream(stream.take(3))
        for a, b in zip(first, second):
            assert a.same_detections(b)
