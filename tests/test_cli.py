"""CLI smoke tests: every subcommand runs and prints the expected shape."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_case_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["case", "--name", "case9"])


class TestCommands:
    def test_flops(self, capsys):
        assert main(["flops"]) == 0
        out = capsys.readouterr().out
        assert "doppler" in out
        assert "403,5" in out  # total flops

    def test_case_quick(self, capsys):
        assert main(["case", "--name", "case3", "--cpis", "8"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "case3" in out

    def test_roundrobin(self, capsys):
        assert main(["roundrobin", "--nodes", "5", "--cpis", "15"]) == 0
        out = capsys.readouterr().out
        assert "round-robin on 5 nodes" in out

    def test_optimize_throughput(self, capsys):
        assert main(["optimize", "--budget", "30"]) == 0
        out = capsys.readouterr().out
        assert "predicted throughput" in out

    def test_optimize_latency_with_floor(self, capsys):
        assert main([
            "optimize", "--budget", "59", "--objective", "latency",
            "--min-throughput", "1.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "predicted latency" in out

    def test_detect(self, capsys):
        assert main(["detect", "--cpis", "2"]) == 0
        out = capsys.readouterr().out
        assert "CPI 0:" in out and "CPI 1:" in out

    def test_table1(self, capsys):
        assert main(["table", "--id", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "worst deviation" in out

    def test_table7_quick(self, capsys):
        assert main(["table", "--id", "7", "--case", "case3", "--cpis", "8"]) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out and "throughput" in out

    @pytest.mark.obs
    def test_case_trace_out_and_report(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "timeline.json"
        assert main([
            "case", "--name", "case3", "--cpis", "6",
            "--trace-out", str(out_path), "--report",
        ]) == 0
        out = capsys.readouterr().out
        assert "bottleneck report" in out
        assert "bottleneck stage utilization" in out
        assert "wrote timeline" in out
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["num_cpis"] == 6

    def test_timeline(self, capsys):
        assert main(["timeline", "--name", "case3", "--cpis", "6",
                     "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "timeline:" in out
        assert "doppler" in out
