"""CLI smoke tests: every subcommand runs and prints the expected shape."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_case_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["case", "--name", "case9"])


class TestCommands:
    def test_flops(self, capsys):
        assert main(["flops"]) == 0
        out = capsys.readouterr().out
        assert "doppler" in out
        assert "403,5" in out  # total flops

    def test_case_quick(self, capsys):
        assert main(["case", "--name", "case3", "--cpis", "8"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "case3" in out

    def test_roundrobin(self, capsys):
        assert main(["roundrobin", "--nodes", "5", "--cpis", "15"]) == 0
        out = capsys.readouterr().out
        assert "round-robin on 5 nodes" in out

    def test_optimize_throughput(self, capsys):
        assert main(["optimize", "--budget", "30"]) == 0
        out = capsys.readouterr().out
        assert "predicted throughput" in out

    def test_optimize_latency_with_floor(self, capsys):
        assert main([
            "optimize", "--budget", "59", "--objective", "latency",
            "--min-throughput", "1.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "predicted latency" in out

    def test_optimize_confirm_prints_side_by_side(self, capsys):
        assert main([
            "optimize", "--budget", "12", "--params", "tiny",
            "--confirm", "--cpis", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "predicted" in out and "simulated" in out
        assert "confirmation run" in out

    def test_tune_analytic_only(self, capsys, tmp_path):
        front_path = tmp_path / "front.json"
        assert main([
            "tune", "--budget", "12", "--params", "tiny",
            "--scenario", "legacy_front", "--sim-candidates", "0",
            "--out", str(front_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "candidates prescreened, 0 simulated" in out
        assert "baseline" in out
        from repro.scheduling import ParetoFront

        front = ParetoFront.load(front_path)
        assert front.budget == 12
        assert front.extra["baseline"]["counts"]

    def test_tune_simulated_with_campaign_dir(self, capsys, tmp_path):
        argv = [
            "tune", "--budget", "12", "--params", "tiny",
            "--scenario", "legacy_front", "--cpis", "8",
            "--sim-candidates", "3", "--sim-rounds", "1",
            "--campaign-dir", str(tmp_path / "campaign"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        # Warm store: the rerun simulates nothing.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 simulated" in out

    def test_tune_unknown_scenario_fails(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="paragon"):
            main([
                "tune", "--budget", "12", "--params", "tiny",
                "--scenario", "warp_drive", "--sim-candidates", "0",
            ])

    def test_detect(self, capsys):
        assert main(["detect", "--cpis", "2"]) == 0
        out = capsys.readouterr().out
        assert "CPI 0:" in out and "CPI 1:" in out

    def test_table1(self, capsys):
        assert main(["table", "--id", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "worst deviation" in out

    def test_table7_quick(self, capsys):
        assert main(["table", "--id", "7", "--case", "case3", "--cpis", "8"]) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out and "throughput" in out

    @pytest.mark.obs
    def test_case_trace_out_and_report(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "timeline.json"
        assert main([
            "case", "--name", "case3", "--cpis", "6",
            "--trace-out", str(out_path), "--report",
        ]) == 0
        out = capsys.readouterr().out
        assert "bottleneck report" in out
        assert "bottleneck stage utilization" in out
        assert "wrote timeline" in out
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["num_cpis"] == 6

    def test_timeline(self, capsys):
        assert main(["timeline", "--name", "case3", "--cpis", "6",
                     "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "timeline:" in out
        assert "doppler" in out


class TestCampaignCommands:
    """campaign run / status / resume against a real store directory."""

    RUN = ["campaign", "run", "--kind", "scalability", "--budgets", "10,14",
           "--params", "tiny", "--cpis", "3"]

    def test_run_status_resume_round_trip(self, capsys, tmp_path):
        directory = str(tmp_path / "camp")

        # Partial run: one point simulated, one left pending.
        assert main(self.RUN + ["--dir", directory, "--max-points", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 simulated" in out
        assert "1/2" in out

        # Status from "a second terminal": disk only, no execution.
        assert main(["campaign", "status", "--dir", directory]) == 0
        out = capsys.readouterr().out
        assert "1/2" in out and "50%" in out

        # Resume finishes the pending point; the first comes from store.
        assert main(["campaign", "resume", "--dir", directory]) == 0
        out = capsys.readouterr().out
        assert "1 simulated" in out and "1 from store" in out
        assert "2/2" in out

        # Resuming a finished campaign performs zero simulations.
        assert main(["campaign", "resume", "--dir", directory]) == 0
        out = capsys.readouterr().out
        assert "0 simulated" in out and "2 from store" in out

    def test_status_without_manifest_fails_cleanly(self, capsys, tmp_path):
        directory = str(tmp_path / "empty")
        assert main(["campaign", "resume", "--dir", directory]) == 2
        err = capsys.readouterr().err
        assert "no campaign manifest" in err

    def test_run_speedup_kind(self, capsys, tmp_path):
        # Speedup campaigns hold the other tasks at case-2 (paper-scale)
        # node counts, so they need the paper params.
        assert main([
            "campaign", "run", "--kind", "speedup", "--task", "cfar",
            "--nodes", "4,8", "--cpis", "3", "--dir", str(tmp_path / "sp"),
        ]) == 0
        out = capsys.readouterr().out
        assert "2 points processed" in out and "2/2" in out

    def test_sweep_campaign_dir_flag(self, capsys, tmp_path):
        args = ["sweep", "--task", "cfar", "--nodes", "4,8", "--cpis", "4",
                "--campaign-dir", str(tmp_path / "sw")]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "2 simulated" in first
        assert main(args) == 0  # second run resolves entirely from store
        second = capsys.readouterr().out
        assert "0 simulated, 2 from cache (2 disk)" in second
        # The figure tables themselves are identical either way.
        table = lambda text: [l for l in text.splitlines()
                              if l.startswith(("===", "  ", "nodes"))]
        assert table(second) == table(first)
