"""Heterogeneous machines: speed regions, scenarios, cache-key neutrality."""

from dataclasses import replace

import pytest

from repro import STAPParams
from repro.core.assignment import Assignment
from repro.errors import ConfigurationError, MachineError
from repro.exec import SimPoint, cache_key
from repro.machine import (
    MACHINE_SCENARIOS,
    SpeedRegion,
    afrl_paragon,
    fast_links,
    fat_nodes,
    gpu_nodes,
    legacy_front,
    machine_scenario,
    scenario_names,
)

TINY_COUNTS = (2, 1, 2, 1, 1, 1, 1)


class TestSpeedRegion:
    def test_validation(self):
        with pytest.raises(MachineError):
            SpeedRegion(4, 4, 2.0)  # empty range
        with pytest.raises(MachineError):
            SpeedRegion(-1, 4, 2.0)
        with pytest.raises(MachineError):
            SpeedRegion(0, 4, 0.0)

    def test_node_speed_multiplies_overlaps(self):
        machine = replace(
            afrl_paragon(),
            speed_regions=(SpeedRegion(0, 8, 2.0), SpeedRegion(4, 12, 0.5)),
        )
        assert machine.node_speed(0) == 2.0
        assert machine.node_speed(4) == 1.0  # 2.0 * 0.5
        assert machine.node_speed(10) == 0.5
        assert machine.node_speed(20) == 1.0

    def test_min_speed_is_slowest_in_range(self):
        machine = replace(
            afrl_paragon(),
            speed_regions=(SpeedRegion(0, 4, 0.25), SpeedRegion(8, 16, 4.0)),
        )
        assert machine.min_speed(0, 4) == 0.25
        assert machine.min_speed(0, 6) == 0.25
        assert machine.min_speed(4, 8) == 1.0
        assert machine.min_speed(8, 16) == 4.0
        assert machine.min_speed(6, 10) == 1.0  # spans plain nodes
        with pytest.raises(MachineError):
            machine.min_speed(5, 5)

    def test_is_heterogeneous(self):
        assert not afrl_paragon().is_heterogeneous
        assert not replace(
            afrl_paragon(), speed_regions=(SpeedRegion(0, 4, 1.0),)
        ).is_heterogeneous
        assert replace(
            afrl_paragon(), speed_regions=(SpeedRegion(0, 4, 2.0),)
        ).is_heterogeneous


class TestScenarios:
    def test_registry_names(self):
        assert scenario_names() == sorted(MACHINE_SCENARIOS)
        assert "paragon" in scenario_names()

    def test_unknown_scenario_lists_known(self):
        with pytest.raises(ConfigurationError, match="paragon"):
            machine_scenario("quantum_annealer")

    def test_each_scenario_builds(self):
        for name in scenario_names():
            machine = machine_scenario(name)
            assert machine.num_nodes >= 59  # all can run Table 7 case 3

    def test_fat_nodes_speeds_compute_only(self):
        base, fat = afrl_paragon(), fat_nodes()
        assert fat.node.smp_speedup > base.node.smp_speedup
        assert fat.network_cost == base.network_cost

    def test_fast_links_divides_network_costs(self):
        base, fast = afrl_paragon(), fast_links(factor=10.0)
        assert fast.network_cost.per_byte_s == base.network_cost.per_byte_s / 10
        assert fast.network_cost.startup_s == base.network_cost.startup_s / 10
        assert not fast.is_heterogeneous

    def test_gpu_and_legacy_are_heterogeneous(self):
        assert gpu_nodes().is_heterogeneous
        assert gpu_nodes(count=32, factor=8.0).node_speed(0) == 8.0
        assert legacy_front().is_heterogeneous
        assert legacy_front(count=16, factor=0.25).min_speed(0, 16) == 0.25


class TestCacheKeyNeutrality:
    def test_homogeneous_machines_keep_seed_cache_keys(self):
        """machine=None and an explicit stock Paragon must key identically,
        and adding an *empty* speed_regions tuple must not shift keys —
        every pre-heterogeneity cache entry stays valid."""
        params = STAPParams.tiny()
        assignment = Assignment(*TINY_COUNTS, name="t")
        none_key = cache_key(SimPoint(params, assignment))
        stock_key = cache_key(SimPoint(params, assignment, machine=afrl_paragon()))
        assert none_key == stock_key

    def test_speed_regions_shift_cache_keys(self):
        params = STAPParams.tiny()
        assignment = Assignment(*TINY_COUNTS, name="t")
        het = replace(afrl_paragon(), speed_regions=(SpeedRegion(0, 4, 0.5),))
        assert cache_key(SimPoint(params, assignment, machine=het)) != cache_key(
            SimPoint(params, assignment)
        )
        other = replace(afrl_paragon(), speed_regions=(SpeedRegion(0, 4, 0.25),))
        assert cache_key(SimPoint(params, assignment, machine=het)) != cache_key(
            SimPoint(params, assignment, machine=other)
        )


class TestSimulatedHeterogeneity:
    def test_slow_region_slows_simulated_throughput(self):
        from repro.exec import execute_point

        params = STAPParams.tiny()
        assignment = Assignment(*TINY_COUNTS, name="t")
        hom = execute_point(
            SimPoint(params, assignment, num_cpis=8), cache=None
        ).metrics
        het_machine = replace(
            afrl_paragon(), speed_regions=(SpeedRegion(0, 9, 0.25),)
        )
        het = execute_point(
            SimPoint(params, assignment, machine=het_machine, num_cpis=8),
            cache=None,
        ).metrics
        assert het.measured_throughput < hom.measured_throughput * 0.5

    def test_unit_factor_regions_are_bit_identical(self):
        from repro.exec import execute_point

        params = STAPParams.tiny()
        assignment = Assignment(*TINY_COUNTS, name="t")
        hom = execute_point(
            SimPoint(params, assignment, num_cpis=8), cache=None
        ).metrics
        unit = replace(afrl_paragon(), speed_regions=(SpeedRegion(0, 9, 1.0),))
        het = execute_point(
            SimPoint(params, assignment, machine=unit, num_cpis=8), cache=None
        ).metrics
        assert het.measured_throughput == hom.measured_throughput
        assert het.measured_latency == hom.measured_latency
