"""Network simulation: transfer timing and endpoint/link contention."""

import pytest

from repro.des import Simulator
from repro.errors import MachineError
from repro.machine import Mesh2D, Network, NetworkCostModel, ContentionMode


def make_network(contention, **cost_kwargs):
    sim = Simulator()
    mesh = Mesh2D(4, 4)
    cost = NetworkCostModel(**cost_kwargs)
    return sim, Network(sim, mesh, cost, contention=contention)


class TestUncontendedTiming:
    def test_single_transfer_time_matches_model(self):
        sim, net = make_network("none", startup_s=1e-5, per_byte_s=1e-9, per_hop_s=1e-7)
        done = net.transfer(0, 3, 1000)  # 3 hops along x
        sim.run()
        assert done.processed
        expected = 1e-5 + 1000 * 1e-9 + 3 * 1e-7
        assert sim.now == pytest.approx(expected)

    def test_self_transfer_cheap(self):
        sim, net = make_network("none", startup_s=1e-5, per_byte_s=1e-9)
        net.transfer(5, 5, 1000)
        sim.run()
        assert sim.now == pytest.approx(1000 * 1e-9)  # no startup

    def test_counters(self):
        sim, net = make_network("none")
        net.transfer(0, 1, 100)
        net.transfer(1, 2, 200)
        sim.run()
        assert net.messages_sent == 2
        assert net.bytes_sent == 300

    def test_negative_size_rejected(self):
        sim, net = make_network("none")
        with pytest.raises(MachineError):
            net.transfer(0, 1, -1)


class TestEndpointContention:
    def test_two_sends_from_same_node_serialize(self):
        # With endpoint contention, a node's injection port is held for the
        # serialization time, so two large messages from one source take
        # about twice as long as one.
        per_byte = 1e-6  # exaggerate serialization
        sim, net = make_network("endpoint", startup_s=0.0, per_byte_s=per_byte,
                                per_hop_s=0.0)
        d1 = net.transfer(0, 1, 1000)
        d2 = net.transfer(0, 2, 1000)
        sim.run()
        assert d1.processed and d2.processed
        assert sim.now == pytest.approx(2 * 1000 * per_byte)

    def test_sends_from_distinct_nodes_overlap(self):
        per_byte = 1e-6
        sim, net = make_network("endpoint", startup_s=0.0, per_byte_s=per_byte,
                                per_hop_s=0.0)
        net.transfer(0, 1, 1000)
        net.transfer(4, 5, 1000)
        sim.run()
        assert sim.now == pytest.approx(1000 * per_byte)

    def test_receiver_port_also_serializes(self):
        per_byte = 1e-6
        sim, net = make_network("endpoint", startup_s=0.0, per_byte_s=per_byte,
                                per_hop_s=0.0)
        net.transfer(0, 5, 1000)
        net.transfer(1, 5, 1000)
        sim.run()
        assert sim.now == pytest.approx(2 * 1000 * per_byte)

    def test_wait_time_visible_in_diagnostics(self):
        per_byte = 1e-6
        sim, net = make_network("endpoint", startup_s=0.0, per_byte_s=per_byte)
        net.transfer(0, 1, 1000)
        net.transfer(0, 2, 1000)
        sim.run()
        assert net.endpoint_wait_time(0) > 0.0


class TestLinkContention:
    def test_disjoint_routes_overlap(self):
        per_byte = 1e-6
        sim, net = make_network("links", startup_s=0.0, per_byte_s=per_byte,
                                per_hop_s=0.0)
        net.transfer(0, 1, 1000)      # row 0
        net.transfer(12, 13, 1000)    # row 3
        sim.run()
        assert sim.now == pytest.approx(1000 * per_byte)

    def test_shared_link_serializes(self):
        per_byte = 1e-6
        sim, net = make_network("links", startup_s=0.0, per_byte_s=per_byte,
                                per_hop_s=0.0)
        # Both routes traverse link 1->2 (XY routing along row 0).
        net.transfer(0, 3, 1000)
        net.transfer(1, 3, 1000)
        sim.run()
        assert sim.now == pytest.approx(2 * 1000 * per_byte)

    def test_no_deadlock_on_opposing_routes(self):
        # Canonical-order acquisition must not deadlock crossing transfers.
        sim, net = make_network("links", startup_s=0.0, per_byte_s=1e-6)
        done = [net.transfer(0, 3, 100), net.transfer(3, 0, 100),
                net.transfer(0, 12, 100), net.transfer(12, 0, 100)]
        sim.run()
        assert all(d.processed for d in done)


class TestContentionModeParsing:
    def test_string_aliases(self):
        sim = Simulator()
        mesh = Mesh2D(2, 2)
        for mode in ("none", "endpoint", "links"):
            net = Network(sim, mesh, contention=mode)
            assert net.contention == ContentionMode(mode)

    def test_bad_mode_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(sim, Mesh2D(2, 2), contention="wormhole")
