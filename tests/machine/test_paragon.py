"""Preconfigured machines."""

import pytest

from repro.errors import MachineError
from repro.machine import afrl_paragon, ruggedized_paragon


class TestAfrlParagon:
    def test_has_at_least_321_nodes(self):
        # "This machine contains 321 compute nodes" (Section 6).
        assert afrl_paragon().num_nodes >= 321

    def test_single_processor_message_passing_nodes(self):
        assert afrl_paragon().node.processors_per_node == 1

    def test_node_budget_check(self):
        machine = afrl_paragon()
        machine.check_node_budget(236)  # the paper's largest run
        with pytest.raises(MachineError):
            machine.check_node_budget(10_000)

    def test_compute_time_positive(self):
        machine = afrl_paragon()
        assert machine.compute_time("doppler", 1e6) > 0


class TestRuggedizedParagon:
    def test_25_nodes_3_processors(self):
        # "25 compute nodes ... each compute node has three i860
        # processors" (Section 2).
        machine = ruggedized_paragon()
        assert machine.num_nodes == 25
        assert machine.node.processors_per_node == 3

    def test_smp_speedup_between_1_and_3(self):
        speedup = ruggedized_paragon().node.smp_speedup
        assert 1.0 < speedup < 3.0
