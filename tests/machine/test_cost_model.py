"""Cost models: analytic message costs and copy passes."""

import pytest

from repro.errors import ConfigurationError, MachineError
from repro.machine import NetworkCostModel, PackingCostModel, ComputeRateTable, NodeModel
from repro.machine.paragon import PARAGON_NETWORK


class TestNetworkCostModel:
    def test_paper_parameters(self):
        # "a message startup time of 35.3 usec and a data transfer time of
        # 6.53 nsec/byte" (Section 6).
        assert PARAGON_NETWORK.startup_s == pytest.approx(35.3e-6)
        assert PARAGON_NETWORK.per_byte_s == pytest.approx(6.53e-9)

    def test_point_to_point_is_affine_in_bytes(self):
        cost = NetworkCostModel(startup_s=1e-5, per_byte_s=1e-9, per_hop_s=0.0)
        t1 = cost.point_to_point(1000)
        t2 = cost.point_to_point(2000)
        assert t2 - t1 == pytest.approx(1000 * 1e-9)

    def test_hops_add_latency(self):
        cost = NetworkCostModel(per_hop_s=1e-7)
        assert cost.point_to_point(0, hops=10) - cost.point_to_point(0, hops=0) == (
            pytest.approx(1e-6)
        )

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkCostModel().point_to_point(-1)

    def test_negative_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkCostModel(startup_s=-1.0)

    def test_occupancy_excludes_startup(self):
        cost = NetworkCostModel(startup_s=1.0, per_byte_s=2e-9)
        assert cost.occupancy(500) == pytest.approx(1e-6)


class TestPackingCostModel:
    def test_strided_slower_than_contiguous(self):
        pack = PackingCostModel()
        assert pack.copy_time(10_000, strided=True) > pack.copy_time(
            10_000, strided=False
        )

    def test_copy_time_linear(self):
        pack = PackingCostModel(contiguous_per_byte_s=1e-9, strided_per_byte_s=1e-8)
        assert pack.copy_time(100, strided=False) == pytest.approx(1e-7)
        assert pack.copy_time(100, strided=True) == pytest.approx(1e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            PackingCostModel().copy_time(-5, strided=False)


class TestComputeRateTable:
    def test_default_has_all_kernels(self):
        table = ComputeRateTable()
        for kernel in ("doppler", "hard_weight", "cfar", "default"):
            assert table.rate(kernel) > 0

    def test_unknown_kernel_falls_back_to_default(self):
        table = ComputeRateTable()
        assert table.rate("not-a-kernel") == table.rate("default")

    def test_time_for_inverse_of_rate(self):
        table = ComputeRateTable(rates={"default": 1e6})
        assert table.time_for("default", 5e6) == pytest.approx(5.0)

    def test_scaled(self):
        table = ComputeRateTable(rates={"default": 1e6})
        assert table.scaled(2.0).rate("default") == pytest.approx(2e6)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(MachineError):
            ComputeRateTable(rates={"default": 0.0})

    def test_missing_default_rejected(self):
        with pytest.raises(MachineError):
            ComputeRateTable(rates={"doppler": 1e6})

    def test_negative_flops_rejected(self):
        with pytest.raises(MachineError):
            ComputeRateTable().time_for("default", -1.0)


class TestNodeModel:
    def test_single_processor_no_smp_speedup(self):
        node = NodeModel(processors_per_node=1)
        assert node.smp_speedup == 1.0

    def test_three_processors_sublinear(self):
        node = NodeModel(processors_per_node=3, smp_efficiency=0.85)
        assert node.smp_speedup == pytest.approx(1.0 + 2 * 0.85)
        assert node.smp_speedup < 3.0

    def test_compute_time_uses_speedup(self):
        one = NodeModel(processors_per_node=1)
        three = NodeModel(processors_per_node=3)
        assert three.compute_time("default", 1e6) < one.compute_time("default", 1e6)

    def test_invalid_configs_rejected(self):
        with pytest.raises(MachineError):
            NodeModel(processors_per_node=0)
        with pytest.raises(MachineError):
            NodeModel(smp_efficiency=0.0)
        with pytest.raises(MachineError):
            NodeModel(memory_bytes=0)
