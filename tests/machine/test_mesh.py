"""Mesh topology: coordinates, neighbours, XY routes."""

import pytest

from repro.errors import MachineError
from repro.machine import Mesh2D, Link


class TestCoordinates:
    def test_row_major_numbering(self):
        mesh = Mesh2D(4, 3)
        assert mesh.coords(0) == (0, 0)
        assert mesh.coords(3) == (3, 0)
        assert mesh.coords(4) == (0, 1)
        assert mesh.coords(11) == (3, 2)

    def test_node_at_is_inverse_of_coords(self):
        mesh = Mesh2D(5, 4)
        for node in range(mesh.num_nodes):
            assert mesh.node_at(*mesh.coords(node)) == node

    def test_out_of_range_node_rejected(self):
        mesh = Mesh2D(3, 3)
        with pytest.raises(MachineError):
            mesh.coords(9)
        with pytest.raises(MachineError):
            mesh.coords(-1)

    def test_out_of_range_coords_rejected(self):
        mesh = Mesh2D(3, 3)
        with pytest.raises(MachineError):
            mesh.node_at(3, 0)

    def test_degenerate_mesh_rejected(self):
        with pytest.raises(MachineError):
            Mesh2D(0, 5)


class TestNeighbors:
    def test_corner_has_two_neighbors(self):
        mesh = Mesh2D(4, 4)
        assert sorted(mesh.neighbors(0)) == [1, 4]

    def test_edge_has_three_neighbors(self):
        mesh = Mesh2D(4, 4)
        assert sorted(mesh.neighbors(1)) == [0, 2, 5]

    def test_interior_has_four_neighbors(self):
        mesh = Mesh2D(4, 4)
        assert sorted(mesh.neighbors(5)) == [1, 4, 6, 9]

    def test_neighbors_are_one_hop(self):
        mesh = Mesh2D(5, 3)
        for node in range(mesh.num_nodes):
            for nb in mesh.neighbors(node):
                assert mesh.hop_distance(node, nb) == 1


class TestRouting:
    def test_route_length_equals_hop_distance(self):
        mesh = Mesh2D(6, 5)
        for src, dst in [(0, 29), (7, 13), (24, 5), (3, 3)]:
            assert len(mesh.route(src, dst)) == mesh.hop_distance(src, dst)

    def test_route_is_connected_and_ends_correctly(self):
        mesh = Mesh2D(6, 5)
        route = mesh.route(2, 27)
        assert route[0].src == 2
        assert route[-1].dst == 27
        for a, b in zip(route, route[1:]):
            assert a.dst == b.src

    def test_xy_order_x_first(self):
        mesh = Mesh2D(4, 4)
        route = mesh.route(0, 10)  # (0,0) -> (2,2)
        xs = [mesh.coords(l.dst)[0] for l in route]
        ys = [mesh.coords(l.dst)[1] for l in route]
        # X is fully resolved before Y moves.
        assert xs == [1, 2, 2, 2]
        assert ys == [0, 0, 1, 2]

    def test_self_route_is_empty(self):
        mesh = Mesh2D(4, 4)
        assert mesh.route(5, 5) == []

    def test_all_links_count(self):
        mesh = Mesh2D(3, 2)
        # Directed links: 2 * (horizontal (w-1)*h + vertical w*(h-1)).
        expected = 2 * ((3 - 1) * 2 + 3 * (2 - 1))
        assert len(list(mesh.all_links())) == expected

    def test_link_reversed(self):
        assert Link(2, 3).reversed() == Link(3, 2)
