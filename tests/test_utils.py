"""Shared utilities: formatting, validation, deterministic RNG."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils import (
    check_in_range,
    check_nonnegative,
    check_positive_int,
    check_probability,
    child_seed,
    format_bytes,
    format_flops,
    format_seconds,
    rng_from_seed,
)


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert format_bytes(16 * 2**20) == "16.00 MiB"
        assert format_bytes(3 * 2**30) == "3.00 GiB"

    def test_format_seconds_paper_style(self):
        assert format_seconds(0.0874) == "0.0874 s"
        assert format_seconds(2.35) == "2.350 s"
        assert format_seconds(-0.5) == "-0.5000 s"
        assert format_seconds(1234.5) == "1234.5 s"

    def test_format_flops(self):
        assert format_flops(500) == "500 flops"
        assert format_flops(403_552_528) == "403.55 Mflops"
        assert format_flops(2.5e9) == "2.50 Gflops"


class TestValidation:
    def test_positive_int(self):
        assert check_positive_int(5, "x") == 5
        for bad in (0, -1, 2.5, True, "3"):
            with pytest.raises(ConfigurationError):
                check_positive_int(bad, "x")

    def test_nonnegative(self):
        assert check_nonnegative(0, "x") == 0.0
        assert check_nonnegative(1.5, "x") == 1.5
        with pytest.raises(ConfigurationError):
            check_nonnegative(-0.1, "x")
        with pytest.raises(ConfigurationError):
            check_nonnegative("nope", "x")

    def test_in_range(self):
        assert check_in_range(0.5, "x", 0, 1) == 0.5
        with pytest.raises(ConfigurationError):
            check_in_range(1.5, "x", 0, 1)

    def test_probability(self):
        assert check_probability(1e-6, "x") == 1e-6
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ConfigurationError):
                check_probability(bad, "x")


class TestRng:
    def test_same_seed_same_stream(self):
        a = rng_from_seed(7).standard_normal(5)
        b = rng_from_seed(7).standard_normal(5)
        assert np.array_equal(a, b)

    def test_child_seed_deterministic(self):
        assert child_seed(7, "cpi", 3) == child_seed(7, "cpi", 3)

    def test_child_seed_distinguishes_labels(self):
        seeds = {
            child_seed(7, "cpi", 0),
            child_seed(7, "cpi", 1),
            child_seed(7, "jam", 0),
            child_seed(8, "cpi", 0),
        }
        assert len(seeds) == 4

    def test_child_seed_in_valid_range(self):
        for i in range(20):
            seed = child_seed(123, "label", i)
            assert 0 <= seed < 2**63
