"""Golden equality: parallel and cached sweeps are bit-identical to serial.

Simulations are deterministic, so the executor must be a pure
performance-layer change: ``jobs>1`` fans points over worker processes
and the cache replays stored results, but every ``PipelineMetrics`` a
caller sees has to match the serial, uncached run float for float (in
fact byte for byte, compared through pickle).

This is also the tier-1 "reduced sweep at jobs=2" exercise: the sweeps
here are small enough for the plain test run while still crossing the
process-pool path.
"""

import pickle

import pytest

from repro import CASE3, STAPParams
from repro.exec import ResultCache, SimPoint, execute_point, run_points
from repro.experiments import scalability_curve, speedup_series
from repro.perf import exec_counters

pytestmark = pytest.mark.exec


class TestSpeedupSeriesGolden:
    def test_parallel_and_cached_match_serial(self):
        sweep = dict(num_cpis=6)
        serial = speedup_series("cfar", (4, 8), jobs=1, cache=None, **sweep)
        cache = ResultCache()
        parallel = speedup_series("cfar", (4, 8), jobs=2, cache=cache, **sweep)
        assert parallel == serial  # frozen dataclasses: exact float equality

        before = exec_counters.snapshot()
        cached = speedup_series("cfar", (4, 8), jobs=2, cache=cache, **sweep)
        delta = exec_counters.delta_since(before)
        assert cached == serial
        assert delta["simulations_run"] == 0, delta
        assert delta["cache_hits_memory"] == 2, delta


class TestScalabilityCurveGolden:
    def test_parallel_and_cached_match_serial(self):
        sweep = dict(num_cpis=8, measured=True)
        serial = scalability_curve((20, 30), jobs=1, cache=None, **sweep)
        cache = ResultCache()
        parallel = scalability_curve((20, 30), jobs=2, cache=cache, **sweep)
        assert parallel == serial

        before = exec_counters.snapshot()
        cached = scalability_curve((20, 30), jobs=2, cache=cache, **sweep)
        delta = exec_counters.delta_since(before)
        assert cached == serial
        assert delta["simulations_run"] == 0, delta


class TestTable7PointGolden:
    def test_bench_point_matches_direct_pipeline_run(self):
        """A bench_table7-style point through the executor+cache equals a
        direct STAPPipeline run, byte for byte."""
        from repro.core.pipeline import STAPPipeline

        direct = STAPPipeline(STAPParams.paper(), CASE3, num_cpis=8).run()
        point = SimPoint(STAPParams.paper(), CASE3, num_cpis=8)
        cache = ResultCache()
        fresh = execute_point(point, cache=cache)
        cached = execute_point(point, cache=cache)
        assert pickle.dumps(fresh.metrics) == pickle.dumps(direct.metrics)
        assert pickle.dumps(cached.metrics) == pickle.dumps(direct.metrics)
        assert fresh.makespan == direct.makespan
        assert fresh.network_messages == direct.network_messages

    def test_parallel_table7_point_matches_serial(self):
        point = SimPoint(STAPParams.paper(), CASE3, num_cpis=8)
        other = SimPoint(STAPParams.paper(), CASE3, num_cpis=7)
        serial = run_points([point, other], jobs=1, cache=None)
        parallel = run_points([point, other], jobs=2, cache=None)
        for s, p in zip(serial, parallel):
            assert pickle.dumps(p.result.metrics) == pickle.dumps(s.result.metrics)
