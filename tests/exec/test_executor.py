"""The batch executor: ordering, error capture, progress, parallel identity."""

import pickle

import pytest

from repro import Assignment, STAPParams
from repro.errors import ExecutionError
from repro.exec import (
    ResultCache,
    SimPoint,
    execute_point,
    run_points,
)
from repro.perf import exec_counters

pytestmark = pytest.mark.exec

TINY = STAPParams.tiny()


def tiny_point(num_cpis=5, cfar=1):
    return SimPoint(
        TINY, Assignment(2, 1, 2, 1, 1, 1, cfar, name=f"p{num_cpis}-{cfar}"),
        num_cpis=num_cpis,
    )


def impossible_point():
    """More nodes than the machine has: fails at pipeline construction."""
    return SimPoint(
        STAPParams.paper(),
        Assignment(320, 16, 112, 16, 28, 16, 16, name="too-big"),
        num_cpis=5,
    )


class TestOrderingAndErrors:
    def test_results_in_input_order(self):
        points = [tiny_point(num_cpis=c) for c in (7, 5, 6)]
        outcomes = run_points(points, jobs=1, cache=ResultCache())
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert [o.point.num_cpis for o in outcomes] == [7, 5, 6]
        assert [o.result.num_cpis for o in outcomes] == [7, 5, 6]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_one_failure_does_not_kill_the_batch(self, jobs):
        points = [impossible_point(), tiny_point()]
        outcomes = run_points(points, jobs=jobs, cache=ResultCache())
        assert not outcomes[0].ok
        assert "MachineError" in outcomes[0].error
        assert outcomes[1].ok
        with pytest.raises(ExecutionError, match="too-big"):
            outcomes[0].unwrap()

    def test_execute_point_raises_on_failure(self):
        with pytest.raises(ExecutionError):
            execute_point(impossible_point(), cache=None)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ExecutionError):
            run_points([tiny_point()], jobs=0)


class TestProgressAndCounters:
    def test_progress_fires_once_per_point_including_hits(self):
        cache = ResultCache()
        points = [tiny_point(num_cpis=c) for c in (5, 6)]
        run_points(points, jobs=1, cache=cache)
        seen = []
        run_points(
            points + [tiny_point(num_cpis=7)],
            jobs=1,
            cache=cache,
            progress=lambda done, total, o: seen.append((done, total, o.cached)),
        )
        assert [s[0] for s in seen] == [1, 2, 3]
        assert all(s[1] == 3 for s in seen)
        assert [s[2] for s in seen] == [True, True, False]

    def test_counters_account_for_every_point(self):
        cache = ResultCache()
        points = [tiny_point(num_cpis=c) for c in (5, 6)]
        before = exec_counters.snapshot()
        run_points(points, jobs=1, cache=cache)
        run_points(points, jobs=1, cache=cache)
        delta = exec_counters.delta_since(before)
        assert delta["points_submitted"] == 4
        assert delta["simulations_run"] == 2
        assert delta["cache_hits_memory"] == 2
        assert delta["cache_stores"] == 2

    def test_no_cache_means_every_point_simulates(self):
        before = exec_counters.snapshot()
        run_points([tiny_point(), tiny_point()], jobs=1, cache=None)
        delta = exec_counters.delta_since(before)
        assert delta["simulations_run"] == 2
        assert delta["cache_misses"] == 0


class TestProgressEdgeCases:
    def test_raising_callback_is_contained(self):
        """A flaky progress consumer must not kill the batch."""
        calls = []

        def bad_progress(done, total, outcome):
            calls.append(done)
            raise RuntimeError("dashboard exploded")

        before = exec_counters.snapshot()
        outcomes = run_points(
            [tiny_point(num_cpis=5), tiny_point(num_cpis=6)],
            jobs=1, cache=None, progress=bad_progress,
        )
        delta = exec_counters.delta_since(before)
        assert all(o.ok for o in outcomes)
        assert calls == [1, 2]  # still called for every point
        assert delta["progress_errors"] == 2
        assert delta["point_errors"] == 0

    def test_all_cached_batch_spawns_no_pool(self, monkeypatch):
        """A fully cached batch must resolve without a worker pool."""
        from repro.exec import executor as executor_module

        cache = ResultCache()
        points = [tiny_point(num_cpis=c) for c in (5, 6, 7)]
        run_points(points, jobs=1, cache=cache)

        def no_pool(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor spawned for cached batch")

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", no_pool)
        seen = []
        outcomes = run_points(
            points, jobs=4, cache=cache,
            progress=lambda done, total, o: seen.append((done, total)),
        )
        assert all(o.cached for o in outcomes)
        assert seen == [(1, 3), (2, 3), (3, 3)]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_error_outcomes_still_advance_progress(self, jobs):
        """Failed points count toward completed/total like any other."""
        seen = []
        outcomes = run_points(
            [impossible_point(), tiny_point()],
            jobs=jobs, cache=None,
            progress=lambda done, total, o: seen.append(
                (done, total, o.error is not None)
            ),
        )
        assert [s[:2] for s in sorted(seen)] == [(1, 2), (2, 2)]
        assert sum(1 for s in seen if s[2]) == 1  # exactly the failed point
        assert not outcomes[0].ok and outcomes[1].ok


class TestParallelIdentity:
    def test_parallel_results_byte_equal_to_serial(self):
        points = [tiny_point(num_cpis=c, cfar=f)
                  for c, f in ((5, 1), (6, 1), (5, 2), (7, 2))]
        serial = run_points(points, jobs=1, cache=ResultCache())
        parallel = run_points(points, jobs=2, cache=ResultCache())
        for s, p in zip(serial, parallel):
            assert p.ok and s.ok
            assert not p.cached
            assert pickle.dumps(p.result.metrics) == pickle.dumps(s.result.metrics)
            assert p.result.makespan == s.result.makespan
            assert p.result.network_messages == s.result.network_messages
            assert p.result.network_bytes == s.result.network_bytes

    def test_repeated_parallel_sweep_all_cached(self):
        cache = ResultCache()
        points = [tiny_point(num_cpis=c) for c in (5, 6, 7)]
        run_points(points, jobs=2, cache=cache)
        before = exec_counters.snapshot()
        outcomes = run_points(points, jobs=2, cache=cache)
        delta = exec_counters.delta_since(before)
        assert all(o.cached for o in outcomes)
        assert delta["simulations_run"] == 0
        assert delta["cache_hits_memory"] == 3
