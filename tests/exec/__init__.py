"""Tests for repro.exec: the batch executor and result cache."""
