"""rt-mode SimPoints: real execution through the batch executor, uncached.

An rt point times actual worker processes, so its result depends on the
host machine and its load — replaying one from the content-addressed
cache would report a stale measurement as fresh.  The executor must run
rt points every time and never store them.
"""

import pytest

from repro import CASE1, RadarScenario, STAPParams
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.executor import run_points
from repro.exec.point import PointResult, SimPoint

pytestmark = [pytest.mark.exec, pytest.mark.rt]


def rt_point(num_cpis=3, **kwargs):
    return SimPoint(
        STAPParams.tiny(),
        CASE1,
        num_cpis=num_cpis,
        mode="rt",
        scenario=RadarScenario.benign(seed=3),
        rt_workers=7,
        **kwargs,
    )


def test_rt_points_are_not_cacheable():
    assert rt_point().cacheable is False
    assert SimPoint(STAPParams.tiny(), CASE1, num_cpis=3).cacheable is True


def test_rt_point_runs_for_real():
    result = rt_point().run()
    assert isinstance(result, PointResult)
    assert result.num_cpis == 3
    assert result.makespan > 0
    assert result.metrics.measured_throughput > 0
    # The task table carries the stage plan's replica counts.
    assert set(result.metrics.tasks) == {
        "doppler", "easy_weight", "hard_weight", "easy_beamform",
        "hard_beamform", "pulse_compression", "cfar",
    }


def test_executor_never_caches_rt_points(tmp_path):
    cache = ResultCache(directory=tmp_path / "cache")
    point = rt_point()
    first = run_points([point], jobs=1, cache=cache)
    second = run_points([point], jobs=1, cache=cache)
    assert first[0].ok and second[0].ok
    assert not first[0].cached and not second[0].cached
    assert len(cache) == 0  # nothing stored in the memory layer
    assert not list((tmp_path / "cache").glob("*.pkl"))  # nor on disk
    # Independent runs really measured independently.
    assert second[0].elapsed > 0


def test_rt_rejects_measured_flag():
    with pytest.raises(ConfigurationError):
        rt_point(measured=True)


def test_unknown_mode_rejected():
    with pytest.raises(ConfigurationError):
        SimPoint(STAPParams.tiny(), CASE1, mode="magic")
