"""The campaign subsystem: store, manifest, two-state queue, resume."""

import json
import pickle

import pytest

from repro import Assignment, STAPParams
from repro.errors import ConfigurationError, ExecutionError
from repro.exec import (
    CACHE_SCHEMA,
    MANIFEST_SCHEMA,
    Campaign,
    CampaignStore,
    SimPoint,
    cache_key,
    load_campaign,
    point_from_spec,
    point_spec,
    run_points,
)
from repro.exec.campaign import MANIFEST_NAME, RESULTS_DIR
from repro.perf import exec_counters

pytestmark = pytest.mark.exec

TINY_COUNTS = (2, 1, 2, 1, 1, 1, 1)


def tiny_point(name="t", num_cpis=5, **overrides):
    return SimPoint(
        STAPParams.tiny(),
        Assignment(*TINY_COUNTS, name=name),
        num_cpis=num_cpis,
        **overrides,
    )


def tiny_points(n=3):
    return [tiny_point(name=f"p{i}", num_cpis=3 + i) for i in range(n)]


class TestPointSpec:
    def test_round_trip_preserves_key(self):
        for point in (
            tiny_point(),
            tiny_point(measured=True),
            tiny_point(input_rate=12.5, azimuth_cycle=2),
            tiny_point(double_buffering=False, collect_training=False),
            tiny_point(backend="lowered"),
            tiny_point(contention="none"),
        ):
            rebuilt = point_from_spec(point_spec(point))
            assert rebuilt == point
            assert cache_key(rebuilt) == cache_key(point)

    def test_spec_is_json_clean(self):
        spec = point_spec(tiny_point(input_rate=0.1))
        assert point_from_spec(json.loads(json.dumps(spec))) == tiny_point(
            input_rate=0.1
        )

    def test_float_fields_round_trip_exactly(self):
        tricky = 0.1 + 2**-55  # differs from 0.1 only in the last ulp
        spec = point_spec(tiny_point(input_rate=tricky))
        assert point_from_spec(spec).input_rate == tricky

    def test_rt_points_have_no_spec(self):
        point = SimPoint(
            STAPParams.tiny(), Assignment(*TINY_COUNTS, name="rt"), mode="rt"
        )
        with pytest.raises(ConfigurationError):
            point_spec(point)

    def test_custom_machine_round_trips(self):
        # Mesh2D has no value equality, so compare by cache key (which
        # fingerprints every cost model and the speed regions).
        from dataclasses import replace

        from repro.machine import SpeedRegion, afrl_paragon, fat_nodes

        for machine in (
            afrl_paragon(),
            fat_nodes(),
            replace(
                afrl_paragon(),
                speed_regions=(SpeedRegion(0, 4, 0.25), SpeedRegion(2, 6, 2.0)),
            ),
        ):
            point = tiny_point(machine=machine)
            spec = json.loads(json.dumps(point_spec(point)))
            rebuilt = point_from_spec(spec)
            assert cache_key(rebuilt) == cache_key(point)
            assert rebuilt.machine.name == machine.name
            assert rebuilt.machine.speed_regions == machine.speed_regions

    def test_custom_machine_campaign_resumes_from_disk(self, tmp_path):
        from dataclasses import replace

        from repro.machine import SpeedRegion, afrl_paragon

        het = replace(afrl_paragon(), speed_regions=(SpeedRegion(0, 2, 0.5),))
        point = tiny_point(machine=het, num_cpis=8)
        CampaignStore(tmp_path, name="het").declare([point])
        resumed = load_campaign(tmp_path)
        assert [cache_key(p) for p in resumed.points] == [cache_key(point)]


class TestCampaignStore:
    def test_layout(self, tmp_path):
        store = CampaignStore(tmp_path / "c", name="layout")
        store.declare([tiny_point()])
        assert (tmp_path / "c" / MANIFEST_NAME).exists()
        key = cache_key(tiny_point())
        assert store.state(key) == "pending"
        Campaign([tiny_point()], store=store).run()
        assert (tmp_path / "c" / RESULTS_DIR / f"{key}.pkl").exists()
        assert store.state(key) == "complete"

    def test_declare_is_idempotent(self, tmp_path):
        store = CampaignStore(tmp_path, name="idem")
        points = tiny_points()
        keys = store.declare(points)
        assert store.declare(points) == keys
        assert store.declared_keys() == keys

    def test_declare_rejects_rt_points(self, tmp_path):
        store = CampaignStore(tmp_path)
        rt = SimPoint(
            STAPParams.tiny(), Assignment(*TINY_COUNTS, name="rt"), mode="rt"
        )
        with pytest.raises(ConfigurationError):
            store.declare([rt])

    def test_manifest_survives_process_boundary(self, tmp_path):
        points = tiny_points()
        CampaignStore(tmp_path, name="persist").declare(points)
        reloaded = CampaignStore(tmp_path)
        assert reloaded.name == "persist"
        assert reloaded.points() == points

    def test_ephemeral_store_has_no_disk(self):
        store = CampaignStore(None, name="eph")
        keys = store.declare(tiny_points())
        assert store.pending_keys() == keys
        Campaign(tiny_points(), store=store).run()
        assert store.pending_keys() == []

    def test_concurrent_declares_merge(self, tmp_path):
        """Two stores declaring different points into one directory both
        end up in the manifest (reload-merge before write)."""
        a, b = CampaignStore(tmp_path), CampaignStore(tmp_path)
        a.declare([tiny_point(num_cpis=3)])
        b.declare([tiny_point(num_cpis=4)])
        merged = CampaignStore(tmp_path)
        assert set(merged.declared_keys()) == {
            cache_key(tiny_point(num_cpis=3)),
            cache_key(tiny_point(num_cpis=4)),
        }


class TestStaleEntriesAreCleanMisses:
    def test_old_schema_manifest_reads_empty(self, tmp_path):
        """A manifest from another schema era is a clean miss, not an error."""
        document = {
            "schema": MANIFEST_SCHEMA - 1,
            "cache_schema": CACHE_SCHEMA,
            "version": "0.0.0",
            "name": "old",
            "points": [{"key": "deadbeef", "label": "x", "spec": None}],
        }
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(document))
        store = CampaignStore(tmp_path)
        assert store.declared_keys() == []
        assert store.stale_manifest

    def test_old_cache_schema_manifest_reads_empty(self, tmp_path):
        document = {
            "schema": MANIFEST_SCHEMA,
            "cache_schema": CACHE_SCHEMA - 1,
            "version": "0.0.0",
            "name": "old",
            "points": [{"key": "deadbeef", "label": "x", "spec": None}],
        }
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(document))
        assert CampaignStore(tmp_path).declared_keys() == []

    def test_corrupt_manifest_reads_empty(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        store = CampaignStore(tmp_path)
        assert store.declared_keys() == []
        assert store.stale_manifest

    def test_missing_manifest_is_not_stale(self, tmp_path):
        store = CampaignStore(tmp_path)
        assert store.declared_keys() == []
        assert not store.stale_manifest

    def test_stale_result_entries_miss_cleanly(self, tmp_path):
        """Result files from an old key layout (or plain garbage) are
        misses — counted, never raised — and the point just reruns."""
        store = CampaignStore(tmp_path, name="stale")
        point = tiny_point()
        [key] = store.declare([point])
        results = tmp_path / RESULTS_DIR
        results.mkdir(exist_ok=True)
        (results / f"{key}.pkl").write_bytes(b"not a pickle")
        (results / "0123456789abcdef.pkl").write_bytes(b"\x80\x05garbage")
        # Existence says complete, but the corrupt load degrades to a
        # miss at pull time and the simulation reruns.
        before = exec_counters.snapshot()
        outcomes = Campaign([point], store=store).run()
        delta = exec_counters.delta_since(before)
        assert outcomes[0].ok and not outcomes[0].cached
        assert delta["simulations_run"] == 1
        assert delta["cache_corrupt"] >= 1

    def test_resume_refuses_cleanly_without_manifest(self, tmp_path):
        with pytest.raises(ExecutionError, match="no campaign manifest"):
            load_campaign(tmp_path)


class TestCampaignQueue:
    def test_two_states_only(self, tmp_path):
        points = tiny_points()
        campaign = Campaign(points, store=CampaignStore(tmp_path))
        assert [campaign.state(i) for i in range(3)] == ["pending"] * 3
        campaign.run(limit=2)
        assert [campaign.state(i) for i in range(3)] == [
            "complete", "complete", "pending",
        ]
        assert campaign.pending() == points[2:]

    def test_limit_bounds_fresh_simulations_only(self, tmp_path):
        points = tiny_points()
        campaign = Campaign(points, store=CampaignStore(tmp_path))
        campaign.run(limit=1)
        before = exec_counters.snapshot()
        # Complete points are still served; only one new simulation runs.
        outcomes = campaign.run(limit=1)
        delta = exec_counters.delta_since(before)
        assert len(outcomes) == 2
        assert delta["simulations_run"] == 1
        assert delta["cache_hits_memory"] + delta["cache_hits_disk"] == 1

    def test_resume_from_disk_is_byte_identical_and_recomputes_nothing(
        self, tmp_path
    ):
        points = tiny_points()
        reference = run_points(points, cache=None)

        Campaign(points, store=CampaignStore(tmp_path)).run(limit=2)
        # A fresh process would rebuild everything from the directory:
        resumed = load_campaign(tmp_path)
        assert resumed.points == points
        before = exec_counters.snapshot()
        outcomes = resumed.run()
        delta = exec_counters.delta_since(before)
        assert delta["simulations_run"] == 1
        assert delta["cache_hits_disk"] == 2
        assert [pickle.dumps(o.result.metrics) for o in outcomes] == [
            pickle.dumps(o.result.metrics) for o in reference
        ]

    def test_second_store_sees_first_stores_results(self, tmp_path):
        """Two processes sharing a directory share completions."""
        points = tiny_points()
        Campaign(points, store=CampaignStore(tmp_path)).run()
        before = exec_counters.snapshot()
        outcomes = Campaign(points, store=CampaignStore(tmp_path)).run()
        delta = exec_counters.delta_since(before)
        assert all(o.cached for o in outcomes)
        assert delta["simulations_run"] == 0

    def test_run_points_is_an_ephemeral_campaign(self):
        """The thin-wrapper contract: no store leaks, outcomes in order."""
        points = tiny_points()
        outcomes = run_points(points, cache=None)
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert all(o.ok and not o.cached for o in outcomes)

    def test_jobs_validation_still_raises(self):
        with pytest.raises(ExecutionError):
            run_points(tiny_points(1), jobs=0)


class TestCampaignProgress:
    def test_progress_from_disk_alone(self, tmp_path):
        points = tiny_points()
        Campaign(points, store=CampaignStore(tmp_path, name="prog")).run(limit=2)
        progress = CampaignStore(tmp_path).progress()
        assert progress.name == "prog"
        assert (progress.total, progress.complete, progress.pending) == (3, 2, 1)
        assert progress.fraction == pytest.approx(2 / 3)
        assert set(progress.stage_comp) == {
            "doppler", "easy_weight", "hard_weight", "easy_beamform",
            "hard_beamform", "pulse_compression", "cfar",
        }
        assert all(len(v) == 2 for v in progress.stage_comp.values())

    def test_progress_probe_is_counter_neutral(self, tmp_path):
        Campaign(tiny_points(), store=CampaignStore(tmp_path)).run()
        before = exec_counters.snapshot()
        CampaignStore(tmp_path).progress()
        assert not any(exec_counters.delta_since(before).values())

    def test_skip_loading_results(self, tmp_path):
        Campaign(tiny_points(), store=CampaignStore(tmp_path)).run()
        progress = CampaignStore(tmp_path).progress(load_results=False)
        assert progress.complete == 3
        assert progress.stage_comp == {}


class TestSweepCampaigns:
    def test_speedup_series_resumes_through_campaign_dir(self, tmp_path):
        from repro.experiments import speedup_series

        sweep = dict(num_cpis=6)
        serial = speedup_series("cfar", (4, 8), cache=None, **sweep)
        first = speedup_series(
            "cfar", (4, 8), campaign_dir=tmp_path, **sweep
        )
        assert first == serial
        before = exec_counters.snapshot()
        resumed = speedup_series(
            "cfar", (4, 8), campaign_dir=tmp_path, **sweep
        )
        delta = exec_counters.delta_since(before)
        assert resumed == serial
        assert delta["simulations_run"] == 0
        progress = CampaignStore(tmp_path).progress(load_results=False)
        assert (progress.total, progress.complete) == (2, 2)

    def test_bench_store_env_routes_to_campaign(self, tmp_path, monkeypatch):
        import sys

        sys.path.insert(0, "benchmarks") if "benchmarks" not in sys.path else None
        import common

        monkeypatch.setenv(common.CAMPAIGN_DIR_ENV, str(tmp_path))
        monkeypatch.setattr(common, "_campaign_store", None)
        store = common.bench_store()
        assert isinstance(store, CampaignStore)
        assert store.root == tmp_path
        # Unset → back to the default-cache sentinel.
        monkeypatch.delenv(common.CAMPAIGN_DIR_ENV)
        from repro.exec import USE_DEFAULT_CACHE

        assert common.bench_store() is USE_DEFAULT_CACHE
