"""Fresh nested output paths: --cache-dir and --metrics-out must just work.

Pointing a sweep at a results tree that does not exist yet (or that a
cleanup step removed mid-run) used to crash on the first write.  The cache
and the metrics writer now create parent directories on demand and publish
files atomically.
"""

import json
import pickle

import pytest

from repro.exec.cache import ResultCache
from repro.obs.metrics import MetricsRegistry, write_snapshot

pytestmark = pytest.mark.exec


def fresh_snapshot():
    registry = MetricsRegistry()
    registry.enable(reset=True)
    registry.counter("demo_total", "demo").inc(3)
    return registry.snapshot()


def test_write_snapshot_creates_nested_parents(tmp_path):
    target = tmp_path / "results" / "2026" / "run-7" / "metrics.json"
    path = write_snapshot(fresh_snapshot(), target)
    assert path == target
    data = json.loads(target.read_text())
    assert "counters" in data


def test_write_snapshot_prom_format_nested(tmp_path):
    target = tmp_path / "deep" / "tree" / "metrics.prom"
    write_snapshot(fresh_snapshot(), target, format="prom")
    assert "demo_total 3" in target.read_text()


def test_write_snapshot_is_atomic(tmp_path):
    """No temp droppings next to the published file."""
    target = tmp_path / "out" / "metrics.json"
    write_snapshot(fresh_snapshot(), target)
    write_snapshot(fresh_snapshot(), target)  # overwrite in place
    assert [p.name for p in target.parent.iterdir()] == ["metrics.json"]


def test_cache_creates_nested_directory(tmp_path):
    nested = tmp_path / "sweeps" / "campaign" / "cache"
    cache = ResultCache(directory=nested)
    cache.put("k" * 64, {"answer": 42})
    entries = list(nested.glob("*.pkl"))
    assert len(entries) == 1
    assert pickle.loads(entries[0].read_bytes()) == {"answer": 42}


def test_cache_survives_directory_removal(tmp_path):
    """A cleanup step deleting the tree mid-run must not lose writes."""
    import shutil

    nested = tmp_path / "cache"
    cache = ResultCache(directory=nested)
    shutil.rmtree(nested)
    cache.put("a" * 64, {"v": 1})
    assert nested.exists()
    assert cache.get("a" * 64) == {"v": 1}


def test_cli_metrics_out_into_fresh_tree(tmp_path, capsys):
    """End to end: --metrics-out pointing into a directory that does not
    exist yet."""
    from repro.cli import main

    target = tmp_path / "fresh" / "nested" / "metrics.json"
    code = main(["case", "--name", "case1", "--cpis", "2",
                 "--metrics-out", str(target)])
    assert code == 0
    assert target.exists()
