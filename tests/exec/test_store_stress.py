"""Concurrent same-key publishing: last-writer-wins, never torn reads.

Several processes hammer one campaign store directory, repeatedly
publishing distinguishable-but-valid payloads under the *same* keys while
readers pull concurrently.  The atomic tmp + ``os.replace`` protocol must
guarantee that every successful read observes one complete payload — a
mix of two writes (a torn read) or an unpickling error would fail the
internal-consistency check.
"""

import multiprocessing
import pickle

import pytest

from repro.exec.cache import ResultCache

pytestmark = pytest.mark.exec

KEYS = ("aaaa0000", "bbbb1111")
WRITES_PER_WORKER = 40


def _payload(worker: int, iteration: int):
    """A payload whose fields must agree — a torn read breaks the echo."""
    body = list(range(iteration, iteration + 64))
    return {
        "worker": worker,
        "iteration": iteration,
        "body": body,
        "echo": (worker, iteration, sum(body)),
    }


def _consistent(payload) -> bool:
    return payload["echo"] == (
        payload["worker"],
        payload["iteration"],
        sum(payload["body"]),
    )


def _hammer(directory, worker, failures):
    # A fresh cache per process, tiny memory layer so reads go to disk.
    cache = ResultCache(directory=directory, maxsize=1)
    for iteration in range(WRITES_PER_WORKER):
        for key in KEYS:
            cache.put(key, _payload(worker, iteration))
            # Read back through a *second* cache so the memory layer
            # cannot mask a torn file.
            seen = ResultCache(directory=directory, maxsize=1).get(key)
            if seen is not None and not _consistent(seen):
                failures.put((worker, iteration, key))
                return


def test_concurrent_same_key_publishing_never_tears(tmp_path):
    context = multiprocessing.get_context("fork")
    failures = context.Queue()
    workers = [
        context.Process(target=_hammer, args=(tmp_path, rank, failures))
        for rank in range(4)
    ]
    for process in workers:
        process.start()
    for process in workers:
        process.join(timeout=120)
    assert all(process.exitcode == 0 for process in workers)
    assert failures.empty(), f"torn read observed: {failures.get()}"

    # After the dust settles every key holds one complete payload from
    # some writer (last-writer-wins) and round-trips through pickle.
    survivor = ResultCache(directory=tmp_path, maxsize=1)
    for key in KEYS:
        payload = survivor.get(key)
        assert payload is not None
        assert _consistent(payload)
        assert pickle.loads(pickle.dumps(payload)) == payload


def test_corrupt_entry_is_a_miss_not_an_error(tmp_path):
    cache = ResultCache(directory=tmp_path, maxsize=1)
    cache.put(KEYS[0], _payload(0, 0))
    # Simulate a writer dying mid-copy on a non-atomic filesystem.
    path = tmp_path / f"{KEYS[0]}.pkl"
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    assert ResultCache(directory=tmp_path, maxsize=1).get(KEYS[0]) is None
