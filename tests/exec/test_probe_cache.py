"""run_measured's probe phase routes through the result cache."""

import pytest

from repro import Assignment, CPIStream, RadarScenario, STAPParams, STAPPipeline
from repro.exec import ResultCache, set_default_cache
from repro.perf import exec_counters

pytestmark = pytest.mark.exec

TINY = STAPParams.tiny()
COUNTS = (2, 1, 2, 1, 1, 1, 1)


@pytest.fixture
def fresh_default_cache():
    previous = set_default_cache(ResultCache())
    yield
    set_default_cache(previous)


def make_pipeline(**kwargs):
    return STAPPipeline(TINY, Assignment(*COUNTS, name="probe"), num_cpis=6, **kwargs)


class TestProbeCache:
    def test_identical_configs_probe_once(self, fresh_default_cache):
        before = exec_counters.snapshot()
        first = make_pipeline().run_measured()
        mid = exec_counters.delta_since(before)
        assert mid["simulations_run"] == 1  # the probe itself
        assert mid["probe_cache_hits"] == 0

        before = exec_counters.snapshot()
        second = make_pipeline().run_measured()
        delta = exec_counters.delta_since(before)
        assert delta["probe_cache_hits"] == 1
        assert delta["simulations_run"] == 0
        # Bit-identical results either way.
        assert second.metrics == first.metrics

    def test_same_pipeline_object_reprobes_from_cache(self, fresh_default_cache):
        pipeline = make_pipeline()
        first = pipeline.run_measured()
        before = exec_counters.snapshot()
        second = pipeline.run_measured()
        assert exec_counters.delta_since(before)["probe_cache_hits"] == 1
        assert second.metrics == first.metrics

    def test_custom_steering_bypasses_cache(self, fresh_default_cache):
        from repro.stap.reference import default_steering

        steering = default_steering(TINY)
        before = exec_counters.snapshot()
        make_pipeline(steering=steering).run_measured()
        make_pipeline(steering=steering).run_measured()
        delta = exec_counters.delta_since(before)
        assert delta["probe_cache_hits"] == 0
        assert delta["simulations_run"] == 0  # ran outside the exec layer

    def test_functional_mode_bypasses_cache(self, fresh_default_cache, tiny_scenario):
        stream = CPIStream(TINY, tiny_scenario)
        pipeline = STAPPipeline(
            TINY,
            Assignment(*COUNTS, name="probe-func"),
            mode="functional",
            stream=stream,
            num_cpis=5,
        )
        before = exec_counters.snapshot()
        result = pipeline.run_measured()
        delta = exec_counters.delta_since(before)
        assert delta["probe_cache_hits"] == 0
        assert delta["simulations_run"] == 0
        assert len(result.reports) == 5

    def test_probe_result_shared_with_executor_points(self, fresh_default_cache):
        """An unmeasured executor point and run_measured's probe are the
        same configuration, so whichever runs first feeds the other."""
        from repro.exec import SimPoint, execute_point

        execute_point(SimPoint(TINY, Assignment(*COUNTS, name="x"), num_cpis=6))
        before = exec_counters.snapshot()
        make_pipeline().run_measured()
        delta = exec_counters.delta_since(before)
        assert delta["probe_cache_hits"] == 1
        assert delta["simulations_run"] == 0
