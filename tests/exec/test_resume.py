"""Kill a campaign mid-run, resume from its directory, verify byte-identity.

The acceptance test for the durable store: a campaign process is killed
hard (``os._exit``) partway through, a second process resumes against the
same directory, and the merged results must be byte-identical to an
uninterrupted serial run — with the already-published points served from
the store (zero recomputation, asserted via :data:`exec_counters`).
"""

import os
import pickle
import subprocess
import sys
import textwrap

import pytest

from repro import Assignment, STAPParams
from repro.exec import Campaign, CampaignStore, SimPoint, load_campaign, run_points
from repro.perf import exec_counters

pytestmark = pytest.mark.exec

TINY_COUNTS = (2, 1, 2, 1, 1, 1, 1)
NUM_POINTS = 4
KILL_AFTER = 2

#: Stand-alone campaign runner that dies hard after KILL_AFTER points —
#: ``os._exit`` skips interpreter teardown, so nothing is flushed or
#: finalized beyond what the store already published atomically.
_KILLED_RUNNER = textwrap.dedent(
    """
    import os, sys
    from repro.exec import Campaign, CampaignStore
    from test_resume import campaign_points, KILL_AFTER  # via PYTHONPATH

    store = CampaignStore(sys.argv[1], name="killme")

    def die_after(completed, total, outcome):
        if completed >= KILL_AFTER:
            os._exit(137)

    Campaign(campaign_points(), store=store).run(progress=die_after)
    os._exit(0)  # unreachable when the kill fires
    """
)


def campaign_points():
    return [
        SimPoint(
            STAPParams.tiny(),
            Assignment(*TINY_COUNTS, name=f"kill{i}"),
            num_cpis=3 + i,
        )
        for i in range(NUM_POINTS)
    ]


def test_killed_campaign_resumes_byte_identical(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), os.path.dirname(__file__),
                      env.get("PYTHONPATH")])
    )
    proc = subprocess.run(
        [sys.executable, "-c", _KILLED_RUNNER, str(tmp_path)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 137, proc.stderr

    # The store already knows the full campaign and the partial results.
    progress = CampaignStore(tmp_path).progress(load_results=False)
    assert progress.total == NUM_POINTS
    assert KILL_AFTER <= progress.complete < NUM_POINTS

    # Resume in this process; published points must come from disk.
    resumed = load_campaign(tmp_path)
    assert resumed.points == campaign_points()
    before = exec_counters.snapshot()
    outcomes = resumed.run()
    delta = exec_counters.delta_since(before)
    assert delta["simulations_run"] == NUM_POINTS - progress.complete
    assert delta["cache_hits_disk"] == progress.complete
    assert all(o.ok for o in outcomes)

    # Byte-identical to an uninterrupted, uncached serial run.
    reference = run_points(campaign_points(), cache=None)
    assert [pickle.dumps(o.result.metrics) for o in outcomes] == [
        pickle.dumps(o.result.metrics) for o in reference
    ]

    # A second resume performs zero work at all.
    before = exec_counters.snapshot()
    again = load_campaign(tmp_path).run()
    delta = exec_counters.delta_since(before)
    assert delta["simulations_run"] == 0
    assert all(o.cached for o in again)
