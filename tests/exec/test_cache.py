"""The content-addressed result cache: keys, layers, eviction, corruption."""

import pickle

import pytest

from repro import Assignment, STAPParams
from repro.machine import ComputeRateTable, afrl_paragon
from repro.exec import (
    ResultCache,
    SimPoint,
    cache_key,
    execute_point,
    point_fingerprint,
)
from repro.perf import exec_counters

pytestmark = pytest.mark.exec

TINY_COUNTS = (2, 1, 2, 1, 1, 1, 1)


def tiny_point(name="t", num_cpis=5, **overrides):
    return SimPoint(
        STAPParams.tiny(),
        Assignment(*TINY_COUNTS, name=name),
        num_cpis=num_cpis,
        **overrides,
    )


class TestCacheKey:
    def test_stable_across_instances(self):
        assert cache_key(tiny_point()) == cache_key(tiny_point())

    def test_assignment_name_is_cosmetic(self):
        """Two differently-named but physically identical assignments share
        one key (and hence one simulation)."""
        assert cache_key(tiny_point(name="a")) == cache_key(tiny_point(name="b"))

    def test_key_covers_every_simulation_input(self):
        base = tiny_point()
        variants = [
            tiny_point(num_cpis=6),
            tiny_point(input_rate=10.0),
            tiny_point(double_buffering=False),
            tiny_point(collect_training=False),
            tiny_point(measured=True),
            tiny_point(azimuth_cycle=2),
            SimPoint(
                STAPParams.tiny().with_overrides(num_pulses=32),
                Assignment(*TINY_COUNTS, name="t"),
                num_cpis=5,
            ),
            SimPoint(
                STAPParams.tiny(),
                Assignment(2, 1, 2, 1, 1, 1, 2, name="t"),
                num_cpis=5,
            ),
        ]
        keys = {cache_key(p) for p in variants}
        assert cache_key(base) not in keys
        assert len(keys) == len(variants)

    def test_machine_calibration_in_key(self):
        base = tiny_point()
        faster = afrl_paragon(rates=ComputeRateTable().scaled(2.0))
        assert cache_key(base) != cache_key(tiny_point(machine=faster))

    def test_default_machine_fingerprints_like_explicit_paragon(self):
        """machine=None means the default Paragon; the key must agree."""
        assert cache_key(tiny_point()) == cache_key(
            tiny_point(machine=afrl_paragon())
        )

    def test_float_keyed_by_bit_pattern(self):
        a = point_fingerprint(tiny_point(input_rate=0.1))
        b = point_fingerprint(tiny_point(input_rate=0.1 + 2**-55))
        assert a["input_rate"] != b["input_rate"]

    def test_label_is_cosmetic(self):
        assert cache_key(tiny_point(label="x")) == cache_key(tiny_point(label="y"))


class TestMemoryLayer:
    def test_round_trip_and_isolation(self):
        cache = ResultCache()
        point = tiny_point()
        result = execute_point(point, cache=cache)
        again = execute_point(point, cache=cache)
        assert again.metrics == result.metrics
        # Mutating what the caller got back must not poison the cache.
        again.metrics.measured_throughput = -1.0
        third = execute_point(point, cache=cache)
        assert third.metrics == result.metrics

    def test_lru_eviction_bound(self):
        cache = ResultCache(maxsize=2)
        for cpis in (5, 6, 7):
            execute_point(tiny_point(num_cpis=cpis), cache=cache)
        assert len(cache) == 2
        # Oldest entry (5 CPIs) was evicted: fetching it simulates again.
        before = exec_counters.snapshot()
        execute_point(tiny_point(num_cpis=5), cache=cache)
        delta = exec_counters.delta_since(before)
        assert delta["simulations_run"] == 1
        assert delta["cache_misses"] == 1


class TestDiskLayer:
    def test_survives_process_memory(self, tmp_path):
        disk = tmp_path / "cache"
        point = tiny_point()
        first = execute_point(point, cache=ResultCache(directory=disk))
        assert list(disk.glob("*.pkl")), "disk entry not written"
        # A fresh cache instance (empty memory layer) hits the disk store.
        before = exec_counters.snapshot()
        second = execute_point(point, cache=ResultCache(directory=disk))
        delta = exec_counters.delta_since(before)
        assert delta["simulations_run"] == 0
        assert delta["cache_hits_disk"] == 1
        assert pickle.dumps(second.metrics) == pickle.dumps(first.metrics)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        disk = tmp_path / "cache"
        point = tiny_point()
        execute_point(point, cache=ResultCache(directory=disk))
        for entry in disk.glob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        before = exec_counters.snapshot()
        result = execute_point(point, cache=ResultCache(directory=disk))
        delta = exec_counters.delta_since(before)
        assert delta["simulations_run"] == 1
        assert result.metrics.measured_latency > 0
