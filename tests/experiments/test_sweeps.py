"""Sweep utilities (reduced sizes for test speed)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import scalability_curve, speedup_series
from repro.radar import STAPParams


class TestSpeedupSeries:
    def test_linear_speedup_small(self):
        params = STAPParams.small()
        # Keep the non-swept tasks' base counts valid at small scale by
        # sweeping at paper params with few points (each run ~1s).
        series = speedup_series("cfar", (4, 8, 16), num_cpis=8)
        assert [p.nodes for p in series] == [4, 8, 16]
        for point in series:
            assert point.speedup == pytest.approx(point.ideal_speedup, rel=0.1)
            assert 0.85 <= point.efficiency <= 1.15

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            speedup_series("nope", (4,))
        with pytest.raises(ConfigurationError):
            speedup_series("cfar", ())


class TestScalabilityCurve:
    def test_throughput_monotone_in_budget(self):
        curve = scalability_curve((30, 59), num_cpis=8, measured=False)
        assert curve[1].throughput > curve[0].throughput
        assert curve[0].assignment.total_nodes <= 30

    def test_empty_budgets_rejected(self):
        with pytest.raises(ConfigurationError):
            scalability_curve(())
