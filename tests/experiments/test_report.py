"""Report generation."""

from repro.experiments import generate_report, write_report


class TestReport:
    def test_quick_report_contains_tables(self):
        text = generate_report(quick=True)
        assert "# Reproduction report" in text
        assert "Table 1" in text
        assert "Table 7" in text
        assert "Table 8" in text
        assert "Section 2" in text
        # Quick mode trims the expensive what-if tables.
        assert "Table 9" not in text

    def test_markdown_table_syntax(self):
        text = generate_report(quick=True)
        assert "| row | quantity | measured | paper | error |" in text
        assert "+0.0%" in text or "-0.0%" in text

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "report.md", quick=True)
        assert path.exists()
        assert "Reproduction report" in path.read_text()
