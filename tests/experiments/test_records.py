"""Comparison / TableResult record types."""

import pytest

from repro.experiments import Comparison, TableResult


class TestComparison:
    def test_error_pct(self):
        c = Comparison(measured=11.0, paper=10.0)
        assert c.error_pct == pytest.approx(10.0)

    def test_error_pct_without_reference(self):
        assert Comparison(measured=1.0).error_pct is None

    def test_within(self):
        assert Comparison(10.5, 10.0).within(0.10)
        assert not Comparison(12.0, 10.0).within(0.10)
        assert Comparison(12.0, None).within(0.0)  # vacuous without reference

    def test_str_renders_both_values(self):
        text = str(Comparison(1.5, 1.0, " s"))
        assert "1.5000 s" in text and "paper 1.0000" in text and "+50.0%" in text


class TestTableResult:
    def make(self):
        table = TableResult("T", "demo")
        table.add("row1", "a", Comparison(1.0, 1.0))
        table.add("row1", "b", Comparison(2.2, 2.0))
        table.add("row2", "a", Comparison(3.0))
        return table

    def test_all_within(self):
        table = self.make()
        assert table.all_within(0.15)
        assert not table.all_within(0.05)

    def test_worst_error(self):
        assert self.make().worst_error_pct() == pytest.approx(10.0)

    def test_render_contains_rows_and_notes(self):
        table = self.make()
        table.notes.append("a note")
        text = table.render()
        assert "row1" in text and "row2" in text and "a note" in text
