"""Experiment runners (short CPI counts for test speed)."""

import pytest

from repro.experiments import (
    run_baseline,
    run_table1,
    run_table7,
    run_table8,
    run_table9,
    PAPER_CASES,
)


class TestTable1:
    def test_matches_paper_tightly(self):
        result = run_table1()
        assert result.all_within(0.0005)
        assert result.worst_error_pct() < 0.05

    def test_has_all_tasks(self):
        result = run_table1()
        assert "hard_weight" in result.rows and "total" in result.rows


class TestTable7:
    def test_case3_comp_column(self):
        result = run_table7("case3", num_cpis=10)
        for task in ("doppler", "hard_weight", "cfar"):
            assert result.rows[task]["comp"].within(0.15), task

    def test_unknown_case_rejected(self):
        with pytest.raises(KeyError):
            run_table7("case9")

    def test_render(self):
        text = run_table7("case3", num_cpis=8).render()
        assert "Table 7" in text and "doppler" in text


class TestTable8:
    def test_case3_only_quick(self):
        result = run_table8(num_cpis=10, cases=("case3",))
        assert result.rows["case3"]["throughput"].within(0.15)
        assert result.rows["case3"]["latency"].within(0.20)
        # Equation latency upper-bounds the measured latency.
        assert (
            result.rows["case3"]["eq_latency"].measured
            >= 0.95 * result.rows["case3"]["latency"].measured
        )


class TestTable9:
    def test_gains_positive(self):
        result = run_table9(num_cpis=10)
        assert result.rows["throughput gain"]["%"].measured > 10.0
        assert result.rows["latency gain"]["%"].measured > 0.0

    def test_secondary_effect_recv_deltas_negative(self):
        result = run_table9(num_cpis=10)
        deltas = [
            cells["recv delta"].measured
            for row, cells in result.rows.items()
            if "recv delta" in cells
        ]
        assert sum(1 for d in deltas if d < 0) >= 4


class TestBaseline:
    def test_rtmcarm_numbers(self):
        result = run_baseline(num_cpis=40)
        assert result.rows["throughput"]["CPIs/s"].within(0.15)
        assert result.rows["latency"]["s"].within(0.15)


class TestRegistry:
    def test_named_cases_complete(self):
        assert set(PAPER_CASES) == {"case1", "case2", "case3", "table9", "table10"}
