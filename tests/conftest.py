"""Shared fixtures: toy parameter sets, scenarios, and streams."""

from __future__ import annotations

import pytest

from repro import CPIStream, RadarScenario, STAPParams, TargetTruth


@pytest.fixture
def tiny_params() -> STAPParams:
    """Smallest legal configuration (fast unit tests)."""
    return STAPParams.tiny()


@pytest.fixture
def small_params() -> STAPParams:
    """Mid-size configuration (integration tests)."""
    return STAPParams.small()


@pytest.fixture
def paper_params() -> STAPParams:
    """The paper's exact Section 7 parameters."""
    return STAPParams.paper()


@pytest.fixture
def tiny_scenario() -> RadarScenario:
    """Clutter + two detectable targets sized for the tiny cube."""
    return RadarScenario(
        clutter_to_noise_db=40.0,
        targets=(
            TargetTruth(range_cell=20, normalized_doppler=0.25, angle_deg=0.0, snr_db=5.0),
            TargetTruth(
                range_cell=30, normalized_doppler=0.05, angle_deg=-10.0, snr_db=10.0
            ),
        ),
        seed=11,
    )


@pytest.fixture
def tiny_stream(tiny_params, tiny_scenario) -> CPIStream:
    return CPIStream(tiny_params, tiny_scenario)


@pytest.fixture
def benign_scenario() -> RadarScenario:
    """Noise-only scenario for numerical checks."""
    return RadarScenario.benign(seed=3)
