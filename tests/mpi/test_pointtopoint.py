"""SimMPI point-to-point: matching semantics, wildcards, ordering, timing."""

import numpy as np
import pytest

from repro.des import Simulator
from repro.errors import MPIError
from repro.machine import afrl_paragon
from repro.mpi import World, ANY_SOURCE, ANY_TAG


def run_world(num_ranks, program, contention="none"):
    sim = Simulator()
    world = World(sim, afrl_paragon(), num_ranks=num_ranks, contention=contention)
    world.spawn_all(program)
    sim.run()
    return sim, world


class TestBasicSendRecv:
    def test_payload_delivered(self):
        received = {}

        def program(ctx):
            if ctx.rank == 0:
                yield ctx.isend({"k": 1}, dest=1, tag=7)
            else:
                msg = yield ctx.irecv(source=0, tag=7)
                received["msg"] = msg

        run_world(2, program)
        assert received["msg"].payload == {"k": 1}
        assert received["msg"].source == 0
        assert received["msg"].tag == 7

    def test_array_payload_copied_at_send(self):
        received = {}

        def program(ctx):
            if ctx.rank == 0:
                data = np.arange(10)
                req = ctx.isend(data, dest=1, tag=0)
                data[:] = -1  # mutate after posting; receiver must not see it
                yield req
            else:
                msg = yield ctx.irecv(source=0)
                received["data"] = msg.payload

        run_world(2, program)
        assert np.array_equal(received["data"], np.arange(10))

    def test_transfer_takes_time(self):
        times = {}

        def program(ctx):
            if ctx.rank == 0:
                yield ctx.isend(None, dest=1, tag=0, nbytes=10_000)
            else:
                t0 = ctx.wtime()
                yield ctx.irecv(source=0)
                times["elapsed"] = ctx.wtime() - t0

        run_world(2, program)
        cost = afrl_paragon().network_cost
        assert times["elapsed"] >= cost.startup_s + 10_000 * cost.per_byte_s

    def test_recv_waits_for_late_sender(self):
        times = {}

        def program(ctx):
            if ctx.rank == 0:
                yield ctx.elapse(1.0)
                yield ctx.isend("late", dest=1, tag=0)
            else:
                msg = yield ctx.irecv(source=0)
                times["recv_done"] = ctx.wtime()
                assert msg.payload == "late"

        run_world(2, program)
        assert times["recv_done"] >= 1.0


class TestMatching:
    def test_tag_selects_message(self):
        order = []

        def program(ctx):
            if ctx.rank == 0:
                yield ctx.isend("tagA", dest=1, tag=1)
                yield ctx.isend("tagB", dest=1, tag=2)
            else:
                msg_b = yield ctx.irecv(source=0, tag=2)
                msg_a = yield ctx.irecv(source=0, tag=1)
                order.extend([msg_b.payload, msg_a.payload])

        run_world(2, program)
        assert order == ["tagB", "tagA"]

    def test_any_source_wildcard(self):
        got = []

        def program(ctx):
            if ctx.rank in (0, 1):
                yield ctx.isend(f"from{ctx.rank}", dest=2, tag=5)
            else:
                for _ in range(2):
                    msg = yield ctx.irecv(source=ANY_SOURCE, tag=5)
                    got.append((msg.source, msg.payload))

        run_world(3, program)
        assert sorted(got) == [(0, "from0"), (1, "from1")]

    def test_any_tag_wildcard(self):
        got = []

        def program(ctx):
            if ctx.rank == 0:
                yield ctx.isend("x", dest=1, tag=11)
            else:
                msg = yield ctx.irecv(source=0, tag=ANY_TAG)
                got.append(msg.tag)

        run_world(2, program)
        assert got == [11]

    def test_non_overtaking_same_source_tag(self):
        got = []

        def program(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    yield ctx.isend(i, dest=1, tag=3)
            else:
                for _ in range(5):
                    msg = yield ctx.irecv(source=0, tag=3)
                    got.append(msg.payload)

        run_world(2, program)
        assert got == [0, 1, 2, 3, 4]

    def test_negative_tag_rejected(self):
        def program(ctx):
            if ctx.rank == 0:
                with pytest.raises(MPIError):
                    ctx.isend(None, dest=1, tag=-5)
            yield ctx.elapse(0.0)

        run_world(2, program)


class TestRequests:
    def test_wait_all(self):
        done = {}

        def program(ctx):
            if ctx.rank == 0:
                reqs = [ctx.isend(i, dest=1, tag=i) for i in range(4)]
                yield ctx.wait_all(reqs)
                done["sends"] = all(r.complete for r in reqs)
            else:
                reqs = [ctx.irecv(source=0, tag=i) for i in range(4)]
                yield ctx.wait_all(reqs)
                done["payloads"] = sorted(r.value.payload for r in reqs)

        run_world(2, program)
        assert done["sends"] is True
        assert done["payloads"] == [0, 1, 2, 3]

    def test_wait_any(self):
        first = {}

        def program(ctx):
            if ctx.rank == 0:
                yield ctx.elapse(5.0)
                yield ctx.isend("slow", dest=2, tag=1)
            elif ctx.rank == 1:
                yield ctx.isend("fast", dest=2, tag=2)
            else:
                slow = ctx.irecv(source=0, tag=1)
                fast = ctx.irecv(source=1, tag=2)
                yield ctx.wait_any([slow, fast])
                first["fast_done"] = fast.complete
                first["slow_done"] = slow.complete
                yield slow

        run_world(3, program)
        assert first["fast_done"] is True
        assert first["slow_done"] is False

    def test_blocking_helpers(self):
        got = {}

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send("hello", dest=1, tag=9)
            else:
                msg = yield from ctx.recv(source=0, tag=9)
                got["payload"] = msg.payload

        run_world(2, program)
        assert got["payload"] == "hello"


class TestWorldValidation:
    def test_zero_ranks_rejected(self):
        sim = Simulator()
        with pytest.raises(MPIError):
            World(sim, afrl_paragon(), num_ranks=0)

    def test_bad_placement_length_rejected(self):
        sim = Simulator()
        with pytest.raises(MPIError):
            World(sim, afrl_paragon(), num_ranks=4, placement=[0, 1])

    def test_outstanding_zero_after_clean_run(self):
        def program(ctx):
            peer = 1 - ctx.rank
            send = ctx.isend(ctx.rank, dest=peer, tag=0)
            yield ctx.irecv(source=peer, tag=0)
            yield send

        _sim, world = run_world(2, program)
        assert world.outstanding_operations() == 0

    def test_unmatched_recv_deadlocks(self):
        from repro.errors import DeadlockError

        def program(ctx):
            if ctx.rank == 1:
                yield ctx.irecv(source=0, tag=0)  # never sent

        sim = Simulator()
        world = World(sim, afrl_paragon(), num_ranks=2)
        world.spawn_all(program)
        with pytest.raises(DeadlockError):
            sim.run()
