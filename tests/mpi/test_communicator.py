"""Communicators: rank translation, sub-communicators, context isolation."""

import pytest

from repro.des import Simulator
from repro.errors import MPIError
from repro.machine import afrl_paragon
from repro.mpi import World, Communicator


@pytest.fixture
def world():
    sim = Simulator()
    return World(sim, afrl_paragon(), num_ranks=6, contention="none")


class TestRankTranslation:
    def test_world_comm_identity(self, world):
        comm = world.comm
        assert comm.size == 6
        for r in range(6):
            assert comm.world_rank_of(r) == r
            assert comm.local_rank_of(r) == r

    def test_subcomm_translation(self, world):
        sub = Communicator(world, [4, 2, 0])
        assert sub.size == 3
        assert sub.world_rank_of(0) == 4
        assert sub.world_rank_of(2) == 0
        assert sub.local_rank_of(2) == 1

    def test_nonmember_lookup_raises(self, world):
        sub = Communicator(world, [0, 1])
        with pytest.raises(MPIError):
            sub.local_rank_of(5)

    def test_out_of_range_local_raises(self, world):
        with pytest.raises(MPIError):
            world.comm.world_rank_of(99)

    def test_duplicate_ranks_rejected(self, world):
        with pytest.raises(MPIError):
            Communicator(world, [0, 0, 1])

    def test_create_comm_from_local_ranks(self, world):
        sub = world.comm.create_comm([1, 3, 5])
        assert [sub.world_rank_of(i) for i in range(3)] == [1, 3, 5]

    def test_distinct_context_ids(self, world):
        a = Communicator(world, [0, 1])
        b = Communicator(world, [0, 1])
        assert a.context_id != b.context_id


class TestContextIsolation:
    def test_message_on_one_comm_invisible_to_other(self):
        sim = Simulator()
        world = World(sim, afrl_paragon(), num_ranks=2, contention="none")
        comm_a = Communicator(world, [0, 1])
        comm_b = Communicator(world, [0, 1])
        log = {}

        def rank0(ctx):
            yield comm_a.isend("on-A", dest=1, tag=0, src=0)
            yield comm_b.isend("on-B", dest=1, tag=0, src=0)

        def rank1(ctx):
            # Receive on B first even though A's send was posted first:
            # contexts do not leak into each other.
            msg_b = yield comm_b.irecv(source=0, tag=0, dst=1)
            msg_a = yield comm_a.irecv(source=0, tag=0, dst=1)
            log["order"] = [msg_b.payload, msg_a.payload]

        world.spawn(0, rank0)
        world.spawn(1, rank1)
        sim.run()
        assert log["order"] == ["on-B", "on-A"]

    def test_source_translated_to_local_rank(self):
        sim = Simulator()
        world = World(sim, afrl_paragon(), num_ranks=4, contention="none")
        sub = Communicator(world, [3, 1])  # local 0 = world 3, local 1 = world 1
        log = {}

        def program(ctx):
            if ctx.world_rank == 3:
                yield sub.isend("hi", dest=1, tag=0, src=0)
            elif ctx.world_rank == 1:
                msg = yield sub.irecv(source=0, tag=0, dst=1)
                log["source"] = msg.source
            else:
                yield ctx.elapse(0.0)

        world.spawn_all(program)
        sim.run()
        assert log["source"] == 0  # local rank of world rank 3 in sub


class TestContextBinding:
    def test_rank_context_on_subcomm(self):
        sim = Simulator()
        world = World(sim, afrl_paragon(), num_ranks=4, contention="none")
        sub = Communicator(world, [2, 3])
        log = {}

        def program(ctx):
            if ctx.world_rank in (2, 3):
                sctx = ctx.on(sub)
                log[ctx.world_rank] = sctx.rank
            yield ctx.elapse(0.0)

        world.spawn_all(program)
        sim.run()
        assert log == {2: 0, 3: 1}
