"""Eager vs rendezvous transfer protocols."""

import pytest

from repro.des import Simulator
from repro.machine import afrl_paragon
from repro.mpi import World


def make_world(eager_threshold):
    sim = Simulator()
    world = World(
        sim,
        afrl_paragon(),
        num_ranks=2,
        contention="none",
        eager_threshold=eager_threshold,
    )
    return sim, world


class TestEagerProtocol:
    def test_small_send_completes_before_recv_posted(self):
        events = {}

        def program(ctx):
            if ctx.rank == 0:
                req = ctx.isend(b"x" * 100, dest=1, tag=0, nbytes=100)
                yield req
                events["send_done_at"] = ctx.wtime()
            else:
                yield ctx.elapse(5.0)  # receiver shows up late
                msg = yield ctx.irecv(source=0, tag=0)
                events["recv_done_at"] = ctx.wtime()
                assert msg.payload == b"x" * 100

        sim, world = make_world(eager_threshold=1024)
        world.spawn_all(program)
        sim.run()
        # Sender did not wait for the late receiver.
        assert events["send_done_at"] < 1.0
        assert events["recv_done_at"] >= 5.0

    def test_reordered_small_sends_do_not_deadlock(self):
        got = []

        def program(ctx):
            if ctx.rank == 0:
                yield ctx.isend("A", dest=1, tag=1)
                yield ctx.isend("B", dest=1, tag=2)
            else:
                msg_b = yield ctx.irecv(source=0, tag=2)
                msg_a = yield ctx.irecv(source=0, tag=1)
                got.extend([msg_b.payload, msg_a.payload])

        sim, world = make_world(eager_threshold=1024)
        world.spawn_all(program)
        sim.run()
        assert got == ["B", "A"]


class TestRendezvousProtocol:
    def test_large_send_waits_for_receiver(self):
        events = {}

        def program(ctx):
            if ctx.rank == 0:
                req = ctx.isend(None, dest=1, tag=0, nbytes=1_000_000)
                yield req
                events["send_done_at"] = ctx.wtime()
            else:
                yield ctx.elapse(5.0)
                yield ctx.irecv(source=0, tag=0)
                events["recv_done_at"] = ctx.wtime()

        sim, world = make_world(eager_threshold=1024)
        world.spawn_all(program)
        sim.run()
        # The sender's buffer is only reusable after delivery, which in
        # turn waited for the receiver to post.
        assert events["send_done_at"] >= 5.0
        assert events["send_done_at"] == pytest.approx(
            events["recv_done_at"], abs=1e-9
        )

    def test_threshold_boundary(self):
        done_at = {}

        def program(ctx):
            if ctx.rank == 0:
                at_threshold = ctx.isend(None, dest=1, tag=1, nbytes=1024)
                above = ctx.isend(None, dest=1, tag=2, nbytes=1025)
                yield at_threshold
                done_at["eager"] = ctx.wtime()
                yield above
                done_at["rendezvous"] = ctx.wtime()
            else:
                yield ctx.elapse(2.0)
                yield ctx.irecv(source=0, tag=1)
                yield ctx.irecv(source=0, tag=2)

        sim, world = make_world(eager_threshold=1024)
        world.spawn_all(program)
        sim.run()
        assert done_at["eager"] < 1.0  # <= threshold: completes at post
        assert done_at["rendezvous"] >= 2.0  # > threshold: waits for match

    def test_rendezvous_throttles_producer_loop(self):
        """A producer looping on blocking large sends runs at the
        consumer's pace — the flow control double buffering relies on."""
        timestamps = []

        def program(ctx):
            if ctx.rank == 0:
                for i in range(4):
                    yield ctx.isend(None, dest=1, tag=i, nbytes=500_000)
                    timestamps.append(ctx.wtime())
            else:
                for i in range(4):
                    yield ctx.elapse(1.0)  # slow consumer
                    yield ctx.irecv(source=0, tag=i)

        sim, world = make_world(eager_threshold=1024)
        world.spawn_all(program)
        sim.run()
        gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
        assert all(gap >= 0.99 for gap in gaps)
