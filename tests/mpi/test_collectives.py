"""Collectives over point-to-point: correctness at several sizes/roots."""

import numpy as np
import pytest

from repro.des import Simulator
from repro.errors import MPIError
from repro.machine import afrl_paragon
from repro.mpi import World, collectives


def run_collective(num_ranks, body):
    """Run ``body(ctx, out)`` on every rank; returns the shared out dict."""
    sim = Simulator()
    world = World(sim, afrl_paragon(), num_ranks=num_ranks, contention="none")
    out = {}

    def program(ctx):
        yield from body(ctx, out)

    world.spawn_all(program)
    sim.run()
    return out


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 13])
@pytest.mark.parametrize("root", [0, "last"])
class TestBcast:
    def test_value_reaches_all(self, size, root):
        root_rank = size - 1 if root == "last" else 0

        def body(ctx, out):
            value = ("payload", 42) if ctx.rank == root_rank else None
            value = yield from collectives.bcast(ctx, value, root=root_rank)
            out[ctx.rank] = value

        out = run_collective(size, body)
        assert all(out[r] == ("payload", 42) for r in range(size))


@pytest.mark.parametrize("size", [1, 2, 4, 7])
class TestGatherScatter:
    def test_gather_orders_by_rank(self, size):
        def body(ctx, out):
            result = yield from collectives.gather(ctx, ctx.rank * 10, root=0)
            if ctx.rank == 0:
                out["gathered"] = result
            else:
                assert result is None

        out = run_collective(size, body)
        assert out["gathered"] == [10 * r for r in range(size)]

    def test_scatter_delivers_own_item(self, size):
        def body(ctx, out):
            values = [f"item{r}" for r in range(size)] if ctx.rank == 0 else None
            item = yield from collectives.scatter(ctx, values, root=0)
            out[ctx.rank] = item

        out = run_collective(size, body)
        assert out == {r: f"item{r}" for r in range(size)}

    def test_scatter_wrong_length_rejected(self, size):
        def body(ctx, out):
            if ctx.rank == 0:
                try:
                    yield from collectives.scatter(ctx, [1] * (size + 1), root=0)
                except MPIError:
                    out["raised"] = True
                    # Unblock the other ranks with a correct scatter.
                    yield from collectives.scatter(ctx, list(range(size)), root=0)
            else:
                yield from collectives.scatter(ctx, None, root=0)

        out = run_collective(size, body)
        assert out.get("raised") is True


@pytest.mark.parametrize("size", [1, 2, 3, 6, 9])
class TestReduceAllreduce:
    def test_reduce_sum(self, size):
        def body(ctx, out):
            total = yield from collectives.reduce(ctx, ctx.rank + 1, op=lambda a, b: a + b, root=0)
            if ctx.rank == 0:
                out["sum"] = total

        out = run_collective(size, body)
        assert out["sum"] == size * (size + 1) // 2

    def test_allreduce_max_everywhere(self, size):
        def body(ctx, out):
            result = yield from collectives.allreduce(ctx, ctx.rank, op=max)
            out[ctx.rank] = result

        out = run_collective(size, body)
        assert all(v == size - 1 for v in out.values())


@pytest.mark.parametrize("size", [1, 2, 4, 6])
class TestAlltoall:
    def test_personalized_exchange(self, size):
        def body(ctx, out):
            values = [f"{ctx.rank}->{d}" for d in range(size)]
            result = yield from collectives.alltoall(ctx, values)
            out[ctx.rank] = result

        out = run_collective(size, body)
        for r in range(size):
            assert out[r] == [f"{s}->{r}" for s in range(size)]

    def test_wrong_length_rejected(self, size):
        def body(ctx, out):
            try:
                yield from collectives.alltoall(ctx, [0] * (size + 1))
            except MPIError:
                out[ctx.rank] = "raised"
            # Recover with a correct exchange so no rank deadlocks.
            yield from collectives.alltoall(ctx, [0] * size)

        out = run_collective(size, body)
        assert all(v == "raised" for v in out.values())


class TestAlltoallv:
    def test_sparse_exchange(self):
        # Ring: rank r sends to (r+1) % size only.
        size = 5

        def body(ctx, out):
            nxt = (ctx.rank + 1) % size
            prv = (ctx.rank - 1) % size
            received = yield from collectives.alltoallv(
                ctx, sends={nxt: (f"from{ctx.rank}", 64)}, sources=[prv]
            )
            out[ctx.rank] = received

        out = run_collective(size, body)
        for r in range(size):
            assert out[r] == {(r - 1) % size: f"from{(r - 1) % size}"}


class TestBarrier:
    def test_no_rank_proceeds_until_all_arrive(self):
        size = 4
        def body(ctx, out):
            # Stagger arrivals; everyone must leave at (or after) the last.
            yield ctx.elapse(float(ctx.rank))
            yield from collectives.barrier(ctx)
            out[ctx.rank] = ctx.wtime()

        out = run_collective(size, body)
        slowest_arrival = size - 1
        assert all(t >= slowest_arrival for t in out.values())

    def test_bad_root_rejected(self):
        def body(ctx, out):
            try:
                yield from collectives.bcast(ctx, 1, root=99)
            except MPIError:
                out[ctx.rank] = "raised"
            yield ctx.elapse(0.0)

        out = run_collective(2, body)
        assert all(v == "raised" for v in out.values())
