"""Message envelope and payload size inference."""

import numpy as np
import pytest

from repro.mpi.datatypes import Message, payload_nbytes


class TestPayloadNbytes:
    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0

    def test_ndarray_uses_nbytes(self):
        arr = np.zeros((4, 8), dtype=np.complex64)
        assert payload_nbytes(arr) == arr.nbytes == 256

    def test_bytes_like(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes(bytearray(10)) == 10

    def test_containers_sum_recursively(self):
        a = np.zeros(10, dtype=np.float64)  # 80 bytes
        b = np.zeros(5, dtype=np.float32)  # 20 bytes
        assert payload_nbytes([a, b]) == 100
        assert payload_nbytes({"x": a, "y": b}) == 100
        assert payload_nbytes((a, [b, b])) == 120

    def test_scalar_fallback_is_cache_line(self):
        assert payload_nbytes(42) == 64
        assert payload_nbytes("hello") == 64


class TestMessage:
    def test_transit_time(self):
        msg = Message(source=0, tag=1, payload=None, nbytes=8, sent_at=1.0)
        msg.delivered_at = 1.5
        assert msg.transit_time == pytest.approx(0.5)

    def test_unset_delivery_is_nan(self):
        msg = Message(source=0, tag=1, payload=None, nbytes=8, sent_at=1.0)
        assert np.isnan(msg.transit_time)
