"""KernelPlan: CPI-invariant factors computed once, bit-equal to per-call."""

import numpy as np
import pytest

from repro.radar import STAPParams, window_by_name
from repro.stap.cfar import cfar_threshold_factor, reference_cell_counts
from repro.stap.doppler import stagger_phase
from repro.stap.lsq import quiescent_weights, quiescent_weights_stacked
from repro.stap.plan import KernelPlan, build_kernel_plan
from repro.stap.pulse_compression import replica_response
from repro.stap.reference import SequentialSTAP, default_steering


@pytest.fixture
def params():
    return STAPParams.tiny()


@pytest.fixture
def plan(params):
    return KernelPlan.build(params, default_steering(params))


class TestBuild:
    def test_shapes(self, params, plan):
        J, M = params.num_channels, params.num_beams
        N, K = params.num_doppler, params.num_ranges
        assert plan.steering.shape == (J, M)
        assert plan.easy_quiescent.shape == (J, M)
        assert plan.stagger_phases.shape == (N,)
        assert plan.hard_quiescent.shape == (N, 2 * J, M)
        assert plan.doppler_window.shape == (params.num_pulses - params.stagger,)
        assert plan.replica_freq.shape == (K,)
        assert plan.cfar_counts.shape == (K,)
        assert plan.cfar_alpha.shape == (K,)
        assert plan.cfar_factor.shape == (K,)

    def test_entries_equal_per_call_computation(self, params, plan):
        """Each plan field is exactly what the kernels used to recompute."""
        steering = plan.steering
        assert np.array_equal(plan.easy_quiescent, quiescent_weights(steering))
        phases = stagger_phase(params, np.arange(params.num_doppler))
        assert np.array_equal(plan.stagger_phases, phases)
        assert np.array_equal(
            plan.hard_quiescent, quiescent_weights_stacked(steering, phases)
        )
        win = window_by_name(params.window, params.num_pulses - params.stagger)
        assert np.array_equal(plan.doppler_window, win.astype(params.real_dtype))
        assert np.array_equal(plan.replica_freq, replica_response(params))
        counts = reference_cell_counts(params)
        alpha = cfar_threshold_factor(counts, params.cfar_pfa)
        assert np.array_equal(plan.cfar_counts, counts)
        assert np.array_equal(plan.cfar_alpha, alpha)
        assert np.array_equal(plan.cfar_factor, alpha / counts)

    def test_functional_spelling(self, params):
        steering = default_steering(params)
        a = KernelPlan.build(params, steering)
        b = build_kernel_plan(params, steering)
        assert np.array_equal(a.replica_freq, b.replica_freq)
        assert np.array_equal(a.hard_quiescent, b.hard_quiescent)

    def test_frozen(self, plan):
        with pytest.raises(AttributeError):
            plan.steering = plan.steering


class TestSharing:
    def test_reference_builds_plan_when_absent(self, params):
        ref = SequentialSTAP(params)
        assert isinstance(ref.plan, KernelPlan)
        assert ref.plan.params is params

    def test_reference_adopts_supplied_plan(self, params, plan):
        ref = SequentialSTAP(params, plan=plan)
        assert ref.plan is plan
        # The plan's steering wins over the steering argument.
        other = np.zeros_like(plan.steering)
        ref2 = SequentialSTAP(params, steering=other, plan=plan)
        assert ref2.steering is plan.steering

    def test_bin_slices_match_per_bin_computation(self, params, plan):
        """Slicing full-extent plan arrays equals computing just those bins."""
        bins = params.hard_bins[: max(1, len(params.hard_bins) // 2)]
        assert np.array_equal(plan.stagger_phases[bins], stagger_phase(params, bins))
        assert np.array_equal(
            plan.hard_quiescent[bins],
            quiescent_weights_stacked(plan.steering, stagger_phase(params, bins)),
        )
