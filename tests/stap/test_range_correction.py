"""Range (sensitivity-time) correction in Doppler filter processing."""

import numpy as np
import pytest

from repro import (
    Assignment,
    CPIStream,
    RadarScenario,
    STAPParams,
    STAPPipeline,
    SequentialSTAP,
    TargetTruth,
)
from repro.errors import ConfigurationError
from repro.stap.doppler import doppler_filter_block, range_correction_factors


@pytest.fixture
def params():
    return STAPParams.tiny().with_overrides(range_correction=True)


class TestFactors:
    def test_monotone_increasing_with_range(self, params):
        gains = range_correction_factors(params, 0, params.num_ranges)
        assert np.all(np.diff(gains) > 0)

    def test_far_cell_unit_gain(self, params):
        gains = range_correction_factors(params, 0, params.num_ranges)
        assert gains[-1] == pytest.approx(1.0)

    def test_r_squared_shape(self, params):
        gains = range_correction_factors(params, 0, params.num_ranges)
        # Gain at half range is a quarter of the far gain.
        mid = params.num_ranges // 2 - 1
        assert gains[mid] == pytest.approx(0.25, rel=0.05)

    def test_slice_offsets_respected(self, params):
        full = range_correction_factors(params, 0, params.num_ranges)
        part = range_correction_factors(params, 10, 5)
        assert np.allclose(part, full[10:15])

    def test_out_of_range_rejected(self, params):
        with pytest.raises(ConfigurationError):
            range_correction_factors(params, -1, 5)
        with pytest.raises(ConfigurationError):
            range_correction_factors(params, 0, params.num_ranges + 1)


class TestFiltering:
    def test_correction_scales_output(self, params):
        rng = np.random.default_rng(0)
        shape = (params.num_ranges, params.num_channels, params.num_pulses)
        cube = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        corrected = doppler_filter_block(cube, params)
        plain = doppler_filter_block(
            cube, params.with_overrides(range_correction=False)
        )
        gains = range_correction_factors(params, 0, params.num_ranges)
        assert np.allclose(corrected, plain * gains[None, None, :])

    def test_block_offsets_match_full(self, params):
        """Blocks with absolute k_start equal slices of the full result —
        the property the parallel Doppler task needs."""
        rng = np.random.default_rng(1)
        shape = (params.num_ranges, params.num_channels, params.num_pulses)
        cube = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        full = doppler_filter_block(cube, params)
        split = 17
        left = doppler_filter_block(cube[:split], params, k_start=0)
        right = doppler_filter_block(cube[split:], params, k_start=split)
        assert np.allclose(np.concatenate([left, right], axis=2), full)

    def test_input_not_mutated(self, params):
        cube = np.ones(
            (params.num_ranges, params.num_channels, params.num_pulses),
            dtype=complex,
        )
        before = cube.copy()
        doppler_filter_block(cube, params)
        assert np.array_equal(cube, before)


class TestPipelineEquivalence:
    def test_functional_pipeline_matches_reference_with_correction(self, params):
        """The k_start plumbing through the parallel Doppler task."""
        scenario = RadarScenario(
            clutter_to_noise_db=40.0,
            targets=(TargetTruth(40, 0.25, 0.0, 8.0),),
            seed=11,
        )
        reference = SequentialSTAP(params).process_stream(
            CPIStream(params, scenario).take(4)
        )
        result = STAPPipeline(
            params,
            Assignment(3, 2, 2, 2, 2, 2, 2, name="rc"),
            mode="functional",
            stream=CPIStream(params, scenario),
            num_cpis=4,
        ).run()
        for a, b in zip(reference, result.reports):
            assert a.same_detections(b)
