"""QR kernels: factorization identities, block updates, constrained solves."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stap.lsq import (
    qr_factor,
    qr_append_rows,
    solve_constrained,
    quiescent_weights,
)


def random_complex(rng, *shape):
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestQrFactor:
    def test_information_identity_tall(self, rng):
        a = random_complex(rng, 20, 6)
        r = qr_factor(a)
        assert r.shape == (6, 6)
        assert np.allclose(r.conj().T @ r, a.conj().T @ a)

    def test_upper_triangular(self, rng):
        r = qr_factor(random_complex(rng, 15, 5))
        assert np.allclose(np.tril(r, -1), 0)

    def test_wide_matrix_zero_padded(self, rng):
        a = random_complex(rng, 3, 8)
        r = qr_factor(a)
        assert r.shape == (8, 8)
        assert np.allclose(r.conj().T @ r, a.conj().T @ a)
        assert np.allclose(r[3:], 0)

    def test_empty_matrix(self):
        r = qr_factor(np.zeros((0, 4)))
        assert r.shape == (4, 4)
        assert np.allclose(r, 0)

    def test_vector_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            qr_factor(np.zeros(5))


class TestQrAppendRows:
    def test_block_update_equals_batch_qr(self, rng):
        """The paper's 'block update form of the QR decomposition': the R of
        incrementally-appended blocks equals the R of the concatenation."""
        blocks = [random_complex(rng, 7, 4) for _ in range(3)]
        r_incremental = qr_factor(blocks[0])
        for block in blocks[1:]:
            r_incremental = qr_append_rows(r_incremental, block)
        r_batch = qr_factor(np.vstack(blocks))
        assert np.allclose(
            r_incremental.conj().T @ r_incremental, r_batch.conj().T @ r_batch
        )

    def test_forgetting_downweights_old_data(self, rng):
        old = random_complex(rng, 10, 4)
        new = random_complex(rng, 10, 4)
        forget = 0.6
        r = qr_append_rows(qr_factor(old), new, forget=forget)
        expected_info = forget**2 * (old.conj().T @ old) + new.conj().T @ new
        assert np.allclose(r.conj().T @ r, expected_info)

    def test_single_row_append(self, rng):
        r0 = qr_factor(random_complex(rng, 6, 3))
        row = random_complex(rng, 3)
        r1 = qr_append_rows(r0, row)
        assert np.allclose(
            r1.conj().T @ r1, r0.conj().T @ r0 + np.outer(row.conj(), row)
        )

    def test_invalid_forget_rejected(self, rng):
        r = qr_factor(random_complex(rng, 4, 2))
        with pytest.raises(ConfigurationError):
            qr_append_rows(r, random_complex(rng, 1, 2), forget=0.0)
        with pytest.raises(ConfigurationError):
            qr_append_rows(r, random_complex(rng, 1, 2), forget=1.5)

    def test_shape_mismatch_rejected(self, rng):
        r = qr_factor(random_complex(rng, 4, 3))
        with pytest.raises(ConfigurationError):
            qr_append_rows(r, random_complex(rng, 2, 4))
        with pytest.raises(ConfigurationError):
            qr_append_rows(random_complex(rng, 3, 4), random_complex(rng, 1, 4))


class TestSolveConstrained:
    def test_matches_direct_lstsq(self, rng):
        """Solving via the R factor must equal solving the full stacked
        least-squares problem directly."""
        data = random_complex(rng, 30, 5)
        constraint = 0.7 * np.eye(5, dtype=complex)
        steering = random_complex(rng, 5, 3)
        w = solve_constrained(qr_factor(data), constraint, steering, normalize=False)
        stacked = np.vstack([data, constraint])
        rhs = np.vstack([np.zeros((30, 3), dtype=complex), steering])
        w_direct, *_ = np.linalg.lstsq(stacked, rhs, rcond=None)
        # Residual-equivalence: both minimize the same objective.
        assert np.allclose(w, w_direct, atol=1e-8)

    def test_normalization_unit_columns(self, rng):
        data = random_complex(rng, 20, 4)
        w = solve_constrained(
            qr_factor(data), np.eye(4), random_complex(rng, 4, 2), normalize=True
        )
        assert np.allclose(np.linalg.norm(w, axis=0), 1.0)

    def test_strong_constraint_recovers_steering_direction(self, rng):
        data = 1e-6 * random_complex(rng, 20, 4)
        steering = random_complex(rng, 4, 1)
        w = solve_constrained(qr_factor(data), 100.0 * np.eye(4), 100.0 * steering)
        cosine = np.abs(np.vdot(w[:, 0], steering[:, 0])) / np.linalg.norm(steering)
        assert cosine == pytest.approx(1.0, abs=1e-6)

    def test_strong_data_nulls_interference(self, rng):
        # One dominant interference direction; the adapted weight must
        # (nearly) null it while keeping unit norm.
        j = random_complex(rng, 6, 1)
        data = (random_complex(rng, 200, 1) * 30.0) @ j.T  # rank-1 interference
        data += 0.01 * random_complex(rng, 200, 6)
        steering = random_complex(rng, 6, 1)
        w = solve_constrained(qr_factor(np.conj(data)), 0.5 * np.eye(6), steering)
        response = np.abs(np.vdot(w[:, 0], j[:, 0])) / np.linalg.norm(j)
        assert response < 0.05

    def test_rank_deficient_falls_back_gracefully(self, rng):
        r = np.zeros((4, 4), dtype=complex)  # no data at all
        w = solve_constrained(r, 0.5 * np.eye(4), random_complex(rng, 4, 2))
        assert np.all(np.isfinite(w))
        assert np.allclose(np.linalg.norm(w, axis=0), 1.0)

    def test_shape_mismatches_rejected(self, rng):
        r = qr_factor(random_complex(rng, 5, 3))
        with pytest.raises(ConfigurationError):
            solve_constrained(r, np.eye(4), random_complex(rng, 4, 2))
        with pytest.raises(ConfigurationError):
            solve_constrained(r, np.eye(3), random_complex(rng, 2, 2))


class TestQuiescent:
    def test_single_copy_unit_norm(self, rng):
        steering = random_complex(rng, 8, 3)
        w = quiescent_weights(steering)
        assert w.shape == (8, 3)
        assert np.allclose(np.linalg.norm(w, axis=0), 1.0)

    def test_two_copies_with_phase(self, rng):
        steering = random_complex(rng, 4, 2)
        phase = np.exp(1j * 0.7)
        w = quiescent_weights(steering, copies=2, phases=[1.0, phase])
        assert w.shape == (8, 2)
        # Lower block is the phased copy of the upper block.
        ratio = w[4:] / w[:4]
        assert np.allclose(ratio, phase)
