"""Pulse compression: peak location, gain, power domain."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radar import STAPParams, lfm_chirp
from repro.stap.pulse_compression import (
    pulse_compress,
    pulse_compress_block,
    replica_response,
)


@pytest.fixture
def params():
    return STAPParams.tiny()


def cube_with_pulse_at(params, k0, bin_n=0, beam=0, amplitude=1.0):
    cube = np.zeros(
        (params.num_doppler, params.num_beams, params.num_ranges), dtype=complex
    )
    pulse = lfm_chirp(params.waveform_length)
    extent = min(params.waveform_length, params.num_ranges - k0)
    cube[bin_n, beam, k0 : k0 + extent] = amplitude * pulse[:extent]
    return cube


class TestPeak:
    def test_peak_at_true_range(self, params):
        power = pulse_compress(cube_with_pulse_at(params, 17), params)
        assert np.argmax(power[0, 0]) == 17

    def test_peak_power_equals_energy_squared(self, params):
        # Unit-energy pulse, unit-energy matched filter: peak amplitude 1.
        power = pulse_compress(cube_with_pulse_at(params, 10, amplitude=3.0), params)
        assert power[0, 0, 10] == pytest.approx(9.0, rel=1e-5)

    def test_other_rows_untouched(self, params):
        power = pulse_compress(cube_with_pulse_at(params, 10, bin_n=2, beam=1), params)
        assert np.all(power[0, 0] == 0)
        assert power[2, 1].max() > 0

    def test_output_real_dtype(self, params):
        power = pulse_compress(cube_with_pulse_at(params, 5), params)
        assert power.dtype == np.dtype(params.real_dtype)
        assert np.all(power >= 0)


class TestBlocks:
    def test_block_equals_full_rows(self, params):
        cube = cube_with_pulse_at(params, 12, bin_n=3)
        full = pulse_compress(cube, params)
        block = pulse_compress_block(cube[2:5], params)
        assert np.allclose(block, full[2:5])

    def test_precomputed_replica_matches(self, params):
        cube = cube_with_pulse_at(params, 12)
        resp = replica_response(params)
        assert np.allclose(
            pulse_compress(cube, params, resp), pulse_compress(cube, params)
        )

    def test_shape_validation(self, params):
        with pytest.raises(ConfigurationError):
            pulse_compress(np.zeros((2, 2, 2), dtype=complex), params)
        with pytest.raises(ConfigurationError):
            pulse_compress_block(np.zeros((2, 2, 2), dtype=complex), params)

    def test_replica_length_validation(self, params):
        cube = cube_with_pulse_at(params, 5)
        with pytest.raises(ConfigurationError):
            pulse_compress(cube, params, np.zeros(3))


class _AstypeCountingArray(np.ndarray):
    """ndarray that records whether astype copied the underlying buffer."""

    copies = 0

    def astype(self, dtype, *args, **kwargs):
        result = super().astype(dtype, *args, **kwargs)
        if result.__array_interface__["data"][0] != self.__array_interface__["data"][0]:
            _AstypeCountingArray.copies += 1
        return result


class TestNoCopy:
    def test_power_cube_not_cloned(self, monkeypatch):
        """The final astype must be a no-op view when dtypes already match.

        The power cube is the largest array of the pulse-compression task;
        the regression this guards is ``astype`` silently cloning it every
        CPI.  The magnitude-square of ``np.fft.ifft`` output is float64, so
        with float64 ``real_dtype`` the cast must return the same buffer.
        """
        params = STAPParams.tiny().with_overrides(dtype="complex128")
        assert np.dtype(params.real_dtype) == np.float64
        real_ifft = np.fft.ifft

        def counting_ifft(*args, **kwargs):
            return real_ifft(*args, **kwargs).view(_AstypeCountingArray)

        monkeypatch.setattr(np.fft, "ifft", counting_ifft)
        _AstypeCountingArray.copies = 0
        pulse_compress(cube_with_pulse_at(params, 9), params)
        assert _AstypeCountingArray.copies == 0


class TestGain:
    def test_compression_gain_over_noise(self, params):
        """Matched filtering improves pulse-to-noise contrast by ~L."""
        rng = np.random.default_rng(0)
        K = params.num_ranges
        L = params.waveform_length
        sigma = 0.05
        cube = cube_with_pulse_at(params, 20)
        noise = sigma * (
            rng.standard_normal(cube.shape) + 1j * rng.standard_normal(cube.shape)
        )
        power = pulse_compress(cube + noise, params)
        peak = power[0, 0, 20]
        # Input per-sample SNR = (1/L) / sigma^2; output peak SNR ~ 1 / sigma^2.
        noise_floor = np.median(power[1, 0])
        assert peak / noise_floor > 0.2 / sigma**2
