"""Beamforming: shapes, gains, segment handling, assembly."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radar import STAPParams
from repro.radar.geometry import spatial_steering
from repro.stap.beamform import assemble_beamformed, beamform_easy, beamform_hard
from repro.stap.lsq import quiescent_weights
from repro.stap.reference import default_steering


@pytest.fixture
def params():
    return STAPParams.tiny()


class TestEasyBeamform:
    def test_output_shape(self, params):
        n_easy, J, K, M = (
            params.num_easy_doppler,
            params.num_channels,
            params.num_ranges,
            params.num_beams,
        )
        dop = np.ones((n_easy, J, K), dtype=complex)
        w = np.ones((n_easy, J, M), dtype=complex)
        y = beamform_easy(dop, w, params)
        assert y.shape == (n_easy, M, K)

    def test_matched_weight_gives_array_gain(self, params):
        J = params.num_channels
        s = spatial_steering(J, 10.0) * np.sqrt(J)  # raw per-element signal
        dop = np.zeros((params.num_easy_doppler, J, params.num_ranges), dtype=complex)
        dop[0, :, 0] = s
        w = np.zeros((params.num_easy_doppler, J, params.num_beams), dtype=complex)
        w[:, :, 0] = (s / np.linalg.norm(s))[None, :]
        y = beamform_easy(dop, w, params)
        # w^H s = sqrt(J) for a unit-norm matched weight.
        assert np.abs(y[0, 0, 0]) == pytest.approx(np.sqrt(J))

    def test_shape_mismatch_rejected(self, params):
        with pytest.raises(ConfigurationError):
            beamform_easy(np.zeros((1, 1, 1)), np.zeros((1, 1, 1)), params)


class TestHardBeamform:
    def test_output_shape(self, params):
        n_hard, n2, K, M, S = (
            params.num_hard_doppler,
            params.num_staggered_channels,
            params.num_ranges,
            params.num_beams,
            params.num_segments,
        )
        dop = np.ones((n_hard, n2, K), dtype=complex)
        w = np.ones((S, n_hard, n2, M), dtype=complex)
        assert beamform_hard(dop, w, params).shape == (n_hard, M, K)

    def test_each_segment_uses_its_own_weights(self, params):
        n_hard, n2, K = (
            params.num_hard_doppler,
            params.num_staggered_channels,
            params.num_ranges,
        )
        S = params.num_segments
        dop = np.ones((n_hard, n2, K), dtype=complex)
        w = np.zeros((S, n_hard, n2, params.num_beams), dtype=complex)
        for seg in range(S):
            w[seg, :, :, 0] = (seg + 1) / n2  # distinct scale per segment
        y = beamform_hard(dop, w, params)
        for seg_idx, seg in enumerate(params.segment_slices):
            assert np.allclose(y[0, 0, seg], seg_idx + 1)

    def test_staggered_coherent_combining_doubles_amplitude(self, params):
        """The PRI-stagger payoff: with the phase-matched 2J weight, the two
        windows add coherently (+3 dB over one window)."""
        J = params.num_channels
        n2 = 2 * J
        phase = np.exp(0.4j)
        s = spatial_steering(J, 0.0) * np.sqrt(J)
        x = np.concatenate([s, phase * s])  # late window rotated
        dop = np.zeros((params.num_hard_doppler, n2, params.num_ranges), dtype=complex)
        dop[0, :, 0] = x
        w_single = np.zeros(n2, dtype=complex)
        w_single[:J] = s / np.linalg.norm(s)
        w_coherent = np.concatenate([s, phase * s])
        w_coherent /= np.linalg.norm(w_coherent)
        S = params.num_segments
        w = np.zeros((S, params.num_hard_doppler, n2, params.num_beams), dtype=complex)
        w[:, 0, :, 0] = w_single
        y_single = np.abs(beamform_hard(dop, w, params)[0, 0, 0])
        w[:, 0, :, 0] = w_coherent
        y_coherent = np.abs(beamform_hard(dop, w, params)[0, 0, 0])
        assert y_coherent == pytest.approx(np.sqrt(2) * y_single, rel=1e-9)

    def test_shape_mismatch_rejected(self, params):
        with pytest.raises(ConfigurationError):
            beamform_hard(np.zeros((1, 1, 1)), np.zeros((1, 1, 1, 1)), params)


class TestAssemble:
    def test_bins_interleave_by_fft_index(self, params):
        M, K = params.num_beams, params.num_ranges
        easy = np.full((params.num_easy_doppler, M, K), 1.0, dtype=complex)
        hard = np.full((params.num_hard_doppler, M, K), 2.0, dtype=complex)
        full = assemble_beamformed(easy, hard, params)
        assert full.shape == (params.num_doppler, M, K)
        assert np.all(full[params.easy_bins] == 1.0)
        assert np.all(full[params.hard_bins] == 2.0)

    def test_wrong_shapes_rejected(self, params):
        M, K = params.num_beams, params.num_ranges
        good_easy = np.zeros((params.num_easy_doppler, M, K), dtype=complex)
        good_hard = np.zeros((params.num_hard_doppler, M, K), dtype=complex)
        with pytest.raises(ConfigurationError):
            assemble_beamformed(good_easy[:-1], good_hard, params)
        with pytest.raises(ConfigurationError):
            assemble_beamformed(good_easy, good_hard[:-1], params)
