"""CFAR: threshold calibration, edge handling, detection logic."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radar import STAPParams
from repro.stap.cfar import (
    Detection,
    cfar_detect,
    cfar_threshold_factor,
    reference_cell_counts,
)


@pytest.fixture
def params():
    return STAPParams.tiny()


class TestThresholdFactor:
    def test_scalar_formula(self):
        # alpha = n (pfa^{-1/n} - 1), the classic CA-CFAR result.
        alpha = cfar_threshold_factor(16, 1e-6)
        assert alpha == pytest.approx(16 * (1e-6 ** (-1 / 16) - 1))

    def test_monotone_in_pfa(self):
        assert cfar_threshold_factor(16, 1e-8) > cfar_threshold_factor(16, 1e-4)

    def test_vectorized(self):
        counts = np.array([8, 16, 32])
        alphas = cfar_threshold_factor(counts, 1e-6)
        assert alphas.shape == (3,)
        # More averaging -> smaller loss -> smaller factor.
        assert alphas[0] > alphas[1] > alphas[2]

    def test_invalid_args_rejected(self):
        with pytest.raises(ConfigurationError):
            cfar_threshold_factor(0, 1e-6)
        with pytest.raises(ConfigurationError):
            cfar_threshold_factor(16, 1.5)

    def test_pfa_calibration_monte_carlo(self):
        """Empirical false-alarm rate of the complete detector on pure
        exponential noise must be close to the design Pfa."""
        p = STAPParams.tiny().with_overrides(cfar_pfa=1e-2)
        rng = np.random.default_rng(123)
        trials = 40
        total_cells = 0
        total_hits = 0
        for _ in range(trials):
            power = rng.exponential(
                1.0, size=(p.num_doppler, p.num_beams, p.num_ranges)
            ).astype(p.real_dtype)
            hits = cfar_detect(power, p)
            total_hits += len(hits)
            total_cells += power.size
        empirical = total_hits / total_cells
        assert empirical == pytest.approx(1e-2, rel=0.4)


class TestReferenceCells:
    def test_interior_full_window(self, params):
        counts = reference_cell_counts(params)
        mid = params.num_ranges // 2
        assert counts[mid] == 2 * params.cfar_window

    def test_edges_truncated(self, params):
        counts = reference_cell_counts(params)
        assert counts[0] == params.cfar_window  # only trailing window
        assert counts[-1] == params.cfar_window  # only leading window

    def test_never_zero(self, params):
        assert reference_cell_counts(params).min() >= 1


class TestDetection:
    def test_single_spike_detected_at_location(self, params):
        power = np.ones(
            (params.num_doppler, params.num_beams, params.num_ranges),
            dtype=params.real_dtype,
        )
        power[3, 1, 25] = 1e6
        hits = cfar_detect(power, params)
        assert any(
            d.doppler_bin == 3 and d.beam == 1 and d.range_cell == 25 for d in hits
        )

    def test_guard_cells_protect_spread_targets(self, params):
        """Energy in the guard region must not inflate the noise estimate."""
        power = np.ones(
            (params.num_doppler, params.num_beams, params.num_ranges),
            dtype=params.real_dtype,
        )
        k0 = params.num_ranges // 2
        power[0, 0, k0] = 1e5
        power[0, 0, k0 + 1] = 1e5  # within guard of k0
        hits = cfar_detect(power, params)
        cells = {d.range_cell for d in hits if d.doppler_bin == 0}
        assert {k0, k0 + 1} <= cells

    def test_constant_field_no_detections(self, params):
        power = np.full(
            (params.num_doppler, params.num_beams, params.num_ranges),
            5.0,
            dtype=params.real_dtype,
        )
        assert cfar_detect(power, params) == []

    def test_bin_ids_relabel_blocks(self, params):
        power = np.ones((2, params.num_beams, params.num_ranges), dtype=params.real_dtype)
        power[1, 0, 10] = 1e6
        hits = cfar_detect(power, params, bin_ids=np.array([7, 9]))
        assert hits[0].doppler_bin == 9

    def test_block_union_equals_full_run(self, params):
        rng = np.random.default_rng(5)
        power = rng.exponential(
            1.0, size=(params.num_doppler, params.num_beams, params.num_ranges)
        ).astype(params.real_dtype)
        power[2, 0, 30] = 1e6
        full = cfar_detect(power, params)
        split = params.num_doppler // 2
        blocks = cfar_detect(
            power[:split], params, bin_ids=np.arange(split)
        ) + cfar_detect(
            power[split:], params, bin_ids=np.arange(split, params.num_doppler)
        )
        assert sorted(blocks) == sorted(full)

    def test_margin_db(self):
        d = Detection(0, 0, 0, power=100.0, threshold=10.0)
        assert d.margin_db == pytest.approx(10.0)

    def test_precomputed_factor_matches_pfa_path(self, params):
        """The plan-supplied alpha/counts factor reproduces the pfa path."""
        rng = np.random.default_rng(17)
        power = rng.exponential(
            1.0, size=(params.num_doppler, params.num_beams, params.num_ranges)
        ).astype(params.real_dtype)
        power[1, 1, 20] = 1e6
        counts = reference_cell_counts(params)
        factor = cfar_threshold_factor(counts, params.cfar_pfa) / counts
        assert cfar_detect(power, params, factor=factor) == cfar_detect(power, params)

    def test_factor_and_pfa_mutually_exclusive(self, params):
        power = np.ones(
            (params.num_doppler, params.num_beams, params.num_ranges),
            dtype=params.real_dtype,
        )
        counts = reference_cell_counts(params)
        factor = cfar_threshold_factor(counts, params.cfar_pfa) / counts
        with pytest.raises(ConfigurationError):
            cfar_detect(power, params, pfa=1e-4, factor=factor)
        with pytest.raises(ConfigurationError):
            cfar_detect(power, params, factor=factor[:-1])

    def test_vectorized_assembly_fields(self, params):
        """Each Detection carries its own power and threshold, sorted."""
        rng = np.random.default_rng(23)
        power = rng.exponential(
            1.0, size=(params.num_doppler, params.num_beams, params.num_ranges)
        ).astype(params.real_dtype)
        power[0, 0, 10] = 1e6
        power[5, 1, 40] = 1e6
        hits = cfar_detect(power, params)
        assert hits == sorted(hits)
        for d in hits:
            assert d.power == power[d.doppler_bin, d.beam, d.range_cell]
            assert d.power > d.threshold > 0.0

    def test_validation(self, params):
        with pytest.raises(ConfigurationError):
            cfar_detect(np.zeros((2, 2, 2)), params)
        good = np.zeros(
            (params.num_doppler, params.num_beams, params.num_ranges),
            dtype=params.real_dtype,
        )
        with pytest.raises(ConfigurationError):
            cfar_detect(good.astype(complex), params)
        with pytest.raises(ConfigurationError):
            cfar_detect(good, params, bin_ids=np.arange(3))
        with pytest.raises(ConfigurationError):
            cfar_detect(good, params, pfa=2.0)
