"""Angle-Doppler analysis: the synthetic clutter physics made visible."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radar import RadarScenario, STAPParams, TargetTruth, generate_cpi
from repro.stap.angle_doppler import (
    adapted_pattern,
    angle_doppler_spectrum,
    ridge_doppler_estimate,
)
from repro.stap.reference import default_steering


@pytest.fixture(scope="module")
def params():
    return STAPParams.small()


class TestSpectrum:
    def test_shape_and_axes(self, params):
        cube = generate_cpi(params, RadarScenario.benign(0), 0)
        spectrum, angles, dopplers = angle_doppler_spectrum(cube)
        assert spectrum.shape == (angles.size, params.num_doppler)
        assert dopplers[0] == pytest.approx(-0.5)
        assert np.all(np.diff(dopplers) > 0)

    def test_target_appears_at_its_angle_and_doppler(self, params):
        target = TargetTruth(
            range_cell=40, normalized_doppler=0.25, angle_deg=20.0, snr_db=40.0
        )
        scenario = RadarScenario(
            clutter_to_noise_db=-300.0, num_clutter_patches=1,
            targets=(target,), seed=0,
        )
        cube = generate_cpi(params, scenario, 0)
        spectrum, angles, dopplers = angle_doppler_spectrum(cube)
        a_idx, d_idx = np.unravel_index(np.argmax(spectrum), spectrum.shape)
        assert angles[a_idx] == pytest.approx(20.0, abs=3.0)
        assert dopplers[d_idx] == pytest.approx(0.25, abs=0.05)

    def test_empty_angles_rejected(self, params):
        cube = generate_cpi(params, RadarScenario.benign(0), 0)
        with pytest.raises(ConfigurationError):
            angle_doppler_spectrum(cube, angles_deg=[])


class TestRidge:
    def test_ridge_slope_matches_velocity_ratio(self, params):
        """Clutter Doppler = 0.5 * beta * sin(theta): the defining line of
        airborne clutter, and what makes 'hard' bins hard."""
        beta = 1.0
        scenario = RadarScenario(
            clutter_to_noise_db=45.0, clutter_velocity_ratio=beta, seed=2
        )
        cube = generate_cpi(params, scenario, 0)
        angles = np.linspace(-50.0, 50.0, 21)
        angles_out, peaks = ridge_doppler_estimate(cube, angles_deg=angles)
        expected = 0.5 * beta * np.sin(np.deg2rad(angles_out))
        # Allow one Doppler bin of quantization error.
        bin_width = 1.0 / params.num_doppler
        assert np.median(np.abs(peaks - expected)) < 1.5 * bin_width

    def test_slower_platform_flattens_ridge(self, params):
        fast = RadarScenario(clutter_to_noise_db=45.0, clutter_velocity_ratio=1.0, seed=2)
        slow = RadarScenario(clutter_to_noise_db=45.0, clutter_velocity_ratio=0.3, seed=2)
        angles = np.linspace(-50.0, 50.0, 11)
        _, peaks_fast = ridge_doppler_estimate(
            generate_cpi(params, fast, 0), angles_deg=angles
        )
        _, peaks_slow = ridge_doppler_estimate(
            generate_cpi(params, slow, 0), angles_deg=angles
        )
        assert np.abs(peaks_slow).max() < np.abs(peaks_fast).max()


class TestAdaptedPattern:
    def test_quiescent_pattern_peaks_at_steer_angle(self, params):
        from repro.radar.geometry import spatial_steering

        w = spatial_steering(params.num_channels, 15.0)
        pattern, angles = adapted_pattern(w, params)
        assert angles[np.argmax(pattern)] == pytest.approx(15.0, abs=2.0)
        assert pattern.max() == pytest.approx(1.0)

    def test_staggered_weight_accepted(self, params):
        steering = default_steering(params)
        w2 = np.concatenate([steering[:, 0], steering[:, 0]])
        pattern, _ = adapted_pattern(w2, params)
        assert pattern.shape == (181,)

    def test_bad_length_rejected(self, params):
        with pytest.raises(ConfigurationError):
            adapted_pattern(np.ones(5), params)
