"""Doppler filter processing: tone localization, stagger phase, blocks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radar import STAPParams, RadarScenario, generate_cpi
from repro.radar.geometry import temporal_steering
from repro.stap.doppler import (
    doppler_filter,
    doppler_filter_block,
    nearest_bin,
    stagger_phase,
)


@pytest.fixture
def params():
    return STAPParams.tiny()


def tone_cube(params, normalized_doppler, channel_phase=0.0):
    """A pure Doppler tone on every range cell and channel."""
    K, J, N = params.num_ranges, params.num_channels, params.num_pulses
    tone = temporal_steering(N, normalized_doppler) * np.sqrt(N)
    cube = np.broadcast_to(tone, (K, J, N)).astype(complex)
    return cube * np.exp(1j * channel_phase)


class TestShapes:
    def test_output_shape(self, params):
        cube = generate_cpi(params, RadarScenario.benign(0), 0)
        out = doppler_filter(cube)
        assert out.shape == (
            params.num_doppler,
            params.num_staggered_channels,
            params.num_ranges,
        )

    def test_bare_array_needs_params(self, params):
        data = np.zeros(
            (params.num_ranges, params.num_channels, params.num_pulses), dtype=complex
        )
        with pytest.raises(ConfigurationError):
            doppler_filter(data)
        assert doppler_filter(data, params).shape[0] == params.num_doppler

    def test_wrong_shape_rejected(self, params):
        with pytest.raises(ConfigurationError):
            doppler_filter(np.zeros((2, 2, 2), dtype=complex), params)

    def test_block_processes_partial_ranges(self, params):
        cube = generate_cpi(params, RadarScenario.benign(0), 0).data
        full = doppler_filter(cube, params)
        block = doppler_filter_block(cube[5:9], params)
        assert block.shape[2] == 4
        assert np.allclose(block, full[:, :, 5:9])


class TestToneLocalization:
    def test_tone_concentrates_at_its_bin(self, params):
        f = 5 / params.num_pulses  # exact bin centre
        out = doppler_filter(tone_cube(params, f), params)
        spectrum = np.abs(out[:, 0, 0])
        assert np.argmax(spectrum) == 5

    def test_nearest_bin_wraps_negative(self, params):
        n = params.num_pulses
        assert nearest_bin(params, -1.0 / n) == n - 1
        assert nearest_bin(params, 0.0) == 0

    def test_windowing_contains_leakage(self, params):
        f = 5 / params.num_pulses
        out = doppler_filter(tone_cube(params, f), params)
        spectrum = np.abs(out[:, 0, 0])
        far_bins = [b for b in range(params.num_pulses) if abs(b - 5) > 3]
        assert spectrum[5] > 20 * spectrum[far_bins].max()


class TestStaggerPhase:
    def test_late_window_rotated_by_stagger_phase(self, params):
        # A tone at bin n appears in the late window rotated by
        # exp(+2 pi i n s / N) relative to the early window.
        for bin_n in (2, 5, params.num_pulses - 3):
            f = bin_n / params.num_pulses
            out = doppler_filter(tone_cube(params, f), params)
            J = params.num_channels
            early = out[bin_n, 0, 0]
            late = out[bin_n, J, 0]
            expected = stagger_phase(params, [bin_n])[0]
            assert np.abs(early) > 0
            assert late / early == pytest.approx(expected, rel=1e-9)

    def test_phase_is_unit_modulus(self, params):
        phases = stagger_phase(params, params.hard_bins)
        assert np.allclose(np.abs(phases), 1.0)

    def test_zero_bin_phase_is_one(self, params):
        assert stagger_phase(params, [0])[0] == pytest.approx(1.0)


class TestEnergyConservation:
    def test_parseval_no_window(self, params):
        # With a rectangular window and no zero-padding loss, the FFT
        # preserves energy per (range, channel) line.
        p = params.with_overrides(window="rectangular")
        rng = np.random.default_rng(0)
        K, J, N = p.num_ranges, p.num_channels, p.num_pulses
        cube = rng.standard_normal((K, J, N)) + 1j * rng.standard_normal((K, J, N))
        out = doppler_filter(cube, p)
        win_len = N - p.stagger
        in_energy = np.sum(np.abs(cube[0, 0, :win_len]) ** 2)
        out_energy = np.sum(np.abs(out[:, 0, 0]) ** 2) / N
        assert out_energy == pytest.approx(in_energy, rel=1e-9)
