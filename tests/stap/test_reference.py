"""Sequential reference: end-to-end detection and temporal semantics."""

import numpy as np
import pytest

from repro.radar import CPIStream, RadarScenario, STAPParams, TargetTruth
from repro.stap import SequentialSTAP
from repro.stap.doppler import nearest_bin
from repro.stap.reference import default_steering


@pytest.fixture
def params():
    return STAPParams.small()


class TestDetectionBehaviour:
    def test_easy_bin_target_detected_after_training(self, params):
        target = TargetTruth(
            range_cell=40, normalized_doppler=0.28, angle_deg=0.0, snr_db=5.0
        )
        scenario = RadarScenario(clutter_to_noise_db=40.0, targets=(target,), seed=7)
        stap = SequentialSTAP(params)
        reports = stap.process_stream(CPIStream(params, scenario).take(4))
        bin_n = nearest_bin(params, target.normalized_doppler)
        for report in reports[1:]:
            cells = {
                (d.doppler_bin, d.range_cell)
                for d in report.detections
                if abs(d.doppler_bin - bin_n) <= 1
            }
            assert any(k == target.range_cell for _, k in cells), report.cpi_index

    def test_hard_bin_target_detected_when_angularly_separated(self, params):
        # A target inside the clutter Doppler region, but at an angle the
        # ridge does not occupy at that Doppler — the hard-bin case STAP
        # exists for.
        target = TargetTruth(
            range_cell=60, normalized_doppler=0.06, angle_deg=-10.0, snr_db=10.0
        )
        scenario = RadarScenario(clutter_to_noise_db=40.0, targets=(target,), seed=7)
        stap = SequentialSTAP(params)
        reports = stap.process_stream(CPIStream(params, scenario).take(4))
        bin_n = nearest_bin(params, target.normalized_doppler)
        assert bin_n in set(params.hard_bins)
        hits = [
            d
            for r in reports[1:]
            for d in r.detections
            if d.range_cell == target.range_cell and abs(d.doppler_bin - bin_n) <= 1
        ]
        assert hits

    def test_strong_clutter_alone_yields_few_detections(self, params):
        scenario = RadarScenario(clutter_to_noise_db=40.0, targets=(), seed=13)
        stap = SequentialSTAP(params)
        reports = stap.process_stream(CPIStream(params, scenario).take(4))
        cube_cells = params.num_doppler * params.num_beams * params.num_ranges
        for report in reports[1:]:
            # After adaptation, residual crossings should be a tiny fraction.
            assert len(report) < 0.002 * cube_cells

    def test_quiescent_first_cpi_blinded_by_clutter(self, params):
        """Before any training, a modest target inside strong clutter is
        invisible — showing the adaptivity is doing real work."""
        target = TargetTruth(
            range_cell=40, normalized_doppler=0.28, angle_deg=0.0, snr_db=5.0
        )
        scenario = RadarScenario(clutter_to_noise_db=40.0, targets=(target,), seed=7)
        report0 = SequentialSTAP(params).process(
            CPIStream(params, scenario).cube(0)
        )
        assert not any(d.range_cell == target.range_cell for d in report0.detections)


class TestTemporalSemantics:
    def test_weights_pending_after_first_cpi(self, params):
        stap = SequentialSTAP(params)
        assert stap.pending_easy_weights() is None
        stap.process(CPIStream(params, RadarScenario.benign(0)).cube(0))
        assert stap.pending_easy_weights() is not None
        assert stap.pending_hard_weights() is not None

    def test_azimuth_states_are_independent(self, params):
        stream = CPIStream(params, RadarScenario.benign(0), azimuth_cycle=2)
        stap = SequentialSTAP(params)
        stap.process(stream.cube(0))  # azimuth 0
        assert stap.pending_easy_weights(azimuth=0) is not None
        assert stap.pending_easy_weights(azimuth=1) is None
        stap.process(stream.cube(1))  # azimuth 1
        assert stap.pending_easy_weights(azimuth=1) is not None

    def test_weight_shapes(self, params):
        stap = SequentialSTAP(params)
        stap.process(CPIStream(params, RadarScenario.benign(0)).cube(0))
        easy = stap.pending_easy_weights()
        hard = stap.pending_hard_weights()
        assert easy.shape == (
            params.num_easy_doppler,
            params.num_channels,
            params.num_beams,
        )
        assert hard.shape == (
            params.num_segments,
            params.num_hard_doppler,
            params.num_staggered_channels,
            params.num_beams,
        )

    def test_default_steering_shape(self, params):
        steering = default_steering(params)
        assert steering.shape == (params.num_channels, params.num_beams)
        assert np.allclose(np.linalg.norm(steering, axis=0), 1.0)

    def test_detection_report_helpers(self, params):
        scenario = RadarScenario(
            clutter_to_noise_db=40.0,
            targets=(
                TargetTruth(range_cell=40, normalized_doppler=0.28, angle_deg=0.0, snr_db=8.0),
            ),
            seed=7,
        )
        reports = SequentialSTAP(params).process_stream(
            CPIStream(params, scenario).take(3)
        )
        report = reports[-1]
        assert report.same_detections(report)
        assert len(report.strongest(2)) <= 2
        assert 40 in report.ranges_detected()
