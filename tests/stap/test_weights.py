"""Easy and hard weight computers: history handling, adaptivity, recursion."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radar import STAPParams, RadarScenario, generate_cpi
from repro.stap.doppler import doppler_filter
from repro.stap.easy_weights import (
    EasyWeightComputer,
    compute_easy_weights,
    extract_easy_training,
    select_range_samples,
)
from repro.stap.hard_weights import HardWeightComputer, extract_hard_training
from repro.stap.lsq import quiescent_weights
from repro.stap.reference import default_steering


@pytest.fixture
def params():
    return STAPParams.tiny()


@pytest.fixture
def steering(params):
    return default_steering(params)


def staggered_cube(params, seed=0, cnr=35.0):
    scenario = RadarScenario(clutter_to_noise_db=cnr, targets=(), seed=seed)
    return doppler_filter(generate_cpi(params, scenario, seed))


class TestSelectRangeSamples:
    def test_count_and_bounds(self):
        sel = select_range_samples(100, 10)
        assert len(sel) == 10
        assert sel.min() >= 0 and sel.max() < 100

    def test_evenly_spaced(self):
        sel = select_range_samples(100, 10)
        assert np.all(np.diff(sel) == 10)

    def test_all_cells(self):
        assert np.array_equal(select_range_samples(5, 5), np.arange(5))

    def test_too_many_rejected(self):
        with pytest.raises(ConfigurationError):
            select_range_samples(5, 6)


class TestEasyTraining:
    def test_shape(self, params):
        block = extract_easy_training(staggered_cube(params), params)
        assert block.shape == (
            params.num_easy_doppler,
            params.easy_train_per_cpi,
            params.num_channels,
        )

    def test_rows_are_conjugated_snapshots(self, params):
        stag = staggered_cube(params)
        block = extract_easy_training(stag, params)
        sel = select_range_samples(params.num_ranges, params.easy_train_per_cpi)
        bin0 = params.easy_bins[0]
        assert np.allclose(block[0, 0], np.conj(stag[bin0, : params.num_channels, sel[0]]))


class TestEasyWeightComputer:
    def test_quiescent_before_history(self, params, steering):
        computer = EasyWeightComputer(params, steering)
        w = computer.compute_weights()
        expected = quiescent_weights(steering)
        assert np.allclose(w, expected[None, :, :])

    def test_history_capped_at_three(self, params, steering):
        computer = EasyWeightComputer(params, steering)
        for i in range(5):
            computer.push_training(extract_easy_training(staggered_cube(params, i), params))
        assert computer.history_depth() == 3

    def test_azimuth_histories_independent(self, params, steering):
        computer = EasyWeightComputer(params, steering)
        computer.push_training(extract_easy_training(staggered_cube(params, 0), params), azimuth=0)
        assert computer.history_depth(azimuth=0) == 1
        assert computer.history_depth(azimuth=1) == 0

    def test_weights_unit_norm(self, params, steering):
        computer = EasyWeightComputer(params, steering)
        computer.push_training(extract_easy_training(staggered_cube(params), params))
        w = computer.compute_weights()
        assert np.allclose(np.linalg.norm(w, axis=1), 1.0)

    def test_adaptive_weights_cut_clutter_output(self, params, steering):
        """The whole point: output clutter power with adaptive weights must
        be far below the quiescent beamformer's."""
        computer = EasyWeightComputer(params, steering)
        training_cubes = [staggered_cube(params, seed) for seed in range(3)]
        for stag in training_cubes:
            computer.push_training(extract_easy_training(stag, params))
        adaptive = computer.compute_weights()
        quiescent = np.broadcast_to(
            quiescent_weights(steering)[None], adaptive.shape
        )
        test_cube = staggered_cube(params, seed=99)  # fresh clutter look
        easy = test_cube[params.easy_bins][:, : params.num_channels, :]

        def output_power(w):
            y = np.einsum("njm,njk->nmk", np.conj(w), easy)
            return float(np.mean(np.abs(y) ** 2))

        assert output_power(adaptive) < 0.15 * output_power(quiescent)

    def test_bad_training_shape_rejected(self, params, steering):
        computer = EasyWeightComputer(params, steering)
        with pytest.raises(ConfigurationError):
            computer.push_training(np.zeros((1, 2, 3)))

    def test_bad_steering_shape_rejected(self, params):
        with pytest.raises(ConfigurationError):
            EasyWeightComputer(params, np.zeros((3, 3)))

    def test_compute_easy_weights_validates(self, steering):
        with pytest.raises(ConfigurationError):
            compute_easy_weights(np.zeros((4, 4)), steering, 0.5)


class TestHardTraining:
    def test_shape(self, params):
        block = extract_hard_training(staggered_cube(params), params)
        assert block.shape == (
            params.num_segments,
            params.num_hard_doppler,
            params.hard_train_samples,
            params.num_staggered_channels,
        )

    def test_short_segment_zero_padded(self):
        p = STAPParams.tiny().with_overrides(
            range_segment_boundaries=(0, 4, 48), hard_train_samples=10
        )
        block = extract_hard_training(staggered_cube(p), p)
        # First segment has only 4 cells; rows 4..9 must be zero.
        assert np.all(block[0, :, 4:, :] == 0)
        assert np.any(block[0, :, :4, :] != 0)


class TestHardWeightComputer:
    def test_quiescent_is_coherent_staggered_combiner(self, params, steering):
        computer = HardWeightComputer(params, steering)
        w = computer.compute_weights()
        J = params.num_channels
        phases = np.exp(
            2j * np.pi * params.hard_bins * params.stagger / params.num_doppler
        )
        for idx in range(params.num_hard_doppler):
            ratio = w[0, idx, J:, 0] / w[0, idx, :J, 0]
            assert np.allclose(ratio, phases[idx])

    def test_has_history_flag(self, params, steering):
        computer = HardWeightComputer(params, steering)
        assert not computer.has_history()
        computer.update(extract_hard_training(staggered_cube(params), params))
        assert computer.has_history()

    def test_weights_unit_norm_after_update(self, params, steering):
        computer = HardWeightComputer(params, steering)
        computer.update(extract_hard_training(staggered_cube(params), params))
        w = computer.compute_weights()
        assert np.allclose(np.linalg.norm(w, axis=2), 1.0)

    def test_adaptive_weights_cut_clutter_output(self, params, steering):
        computer = HardWeightComputer(params, steering)
        for seed in range(3):
            computer.update(extract_hard_training(staggered_cube(params, seed), params))
        adaptive = computer.compute_weights()
        quiescent = HardWeightComputer(params, steering).compute_weights()
        test_cube = staggered_cube(params, seed=99)
        hard = test_cube[params.hard_bins]

        def output_power(w):
            total = 0.0
            for seg_idx, seg in enumerate(params.segment_slices):
                y = np.einsum("njm,njk->nmk", np.conj(w[seg_idx]), hard[:, :, seg])
                total += float(np.sum(np.abs(y) ** 2))
            return total

        assert output_power(adaptive) < 0.5 * output_power(quiescent)

    def test_forgetting_tracks_changing_clutter(self, params, steering):
        """After many updates from clutter realization A then one from B,
        recent data must dominate (forgetting factor 0.6)."""
        computer = HardWeightComputer(params, steering)
        for seed in range(4):
            computer.update(extract_hard_training(staggered_cube(params, seed), params))
        state_after_a = computer._r_state[0].copy()
        computer.update(extract_hard_training(staggered_cube(params, 100), params))
        # 0.6^2 = 0.36: old information decayed, new injected.
        assert not np.allclose(state_after_a, computer._r_state[0])

    def test_bad_training_shape_rejected(self, params, steering):
        computer = HardWeightComputer(params, steering)
        with pytest.raises(ConfigurationError):
            computer.update(np.zeros((1, 2, 3, 4)))
