"""SINR metrics, including end-to-end jammer nulling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radar import (
    JammerTruth,
    RadarScenario,
    STAPParams,
    generate_cpi,
    spatial_steering,
)
from repro.stap.doppler import doppler_filter
from repro.stap.easy_weights import EasyWeightComputer, extract_easy_training
from repro.stap.lsq import quiescent_weights
from repro.stap.reference import default_steering
from repro.stap.sinr import (
    cancellation_ratio_db,
    output_power,
    signal_gain,
    sinr,
    sinr_improvement_db,
)


@pytest.fixture
def rng():
    return np.random.default_rng(8)


class TestBasics:
    def test_output_power_of_unit_weight_on_white_data(self, rng):
        snaps = (rng.standard_normal((4000, 6)) + 1j * rng.standard_normal((4000, 6)))
        w = np.zeros(6, dtype=complex)
        w[0] = 1.0
        assert output_power(w, snaps) == pytest.approx(2.0, rel=0.1)

    def test_signal_gain_matched(self):
        s = spatial_steering(8, 12.0) * np.sqrt(8)
        w = s / np.linalg.norm(s)
        assert signal_gain(w, s) == pytest.approx(8.0)

    def test_sinr_decomposition(self, rng):
        s = spatial_steering(8, 0.0) * np.sqrt(8)
        w = s / np.linalg.norm(s)
        no_interference = np.zeros((10, 8), dtype=complex)
        # Signal 8, interference 0, noise ||w||^2 = 1 -> SINR 8.
        assert sinr(w, s, no_interference, noise_power=1.0) == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            output_power(np.ones(3), np.ones((5, 4)))
        with pytest.raises(ConfigurationError):
            signal_gain(np.ones(3), np.ones(4))
        with pytest.raises(ConfigurationError):
            sinr(np.ones(3), np.ones(3), np.ones((2, 3)), noise_power=0.0)


class TestJammerNulling:
    """A barrage jammer is spatially coherent across all Doppler bins, so
    the easy-bin adaptive weights must null it — a different interference
    type than the clutter ridge, exercising the same machinery."""

    @pytest.fixture
    def params(self):
        return STAPParams.tiny()

    def test_easy_weights_null_jammer(self, params):
        jammer = JammerTruth(angle_deg=25.0, jnr_db=35.0)
        scenario = RadarScenario(
            clutter_to_noise_db=-300.0,
            num_clutter_patches=1,
            jammers=(jammer,),
            seed=5,
        )
        steering = default_steering(params)
        computer = EasyWeightComputer(params, steering)
        for cpi in range(3):
            stag = doppler_filter(generate_cpi(params, scenario, cpi))
            computer.push_training(extract_easy_training(stag, params))
        adaptive = computer.compute_weights()

        jam_sig = spatial_steering(
            params.num_channels, jammer.angle_deg
        ) * np.sqrt(params.num_channels)
        quiescent = quiescent_weights(steering)
        # Per easy bin, beam 0: the jammer response must drop sharply.
        improvements = []
        for idx in range(params.num_easy_doppler):
            adapted_resp = signal_gain(adaptive[idx, :, 0], jam_sig)
            quiescent_resp = signal_gain(quiescent[:, 0], jam_sig)
            improvements.append(quiescent_resp / max(adapted_resp, 1e-30))
        median_null_depth_db = 10 * np.log10(np.median(improvements))
        assert median_null_depth_db > 15.0

    def test_sinr_improvement_against_clutter(self, params):
        scenario = RadarScenario(clutter_to_noise_db=40.0, targets=(), seed=5)
        steering = default_steering(params)
        computer = EasyWeightComputer(params, steering)
        stags = []
        for cpi in range(3):
            stag = doppler_filter(generate_cpi(params, scenario, cpi))
            stags.append(stag)
            computer.push_training(extract_easy_training(stag, params))
        adaptive = computer.compute_weights()
        quiescent = quiescent_weights(steering)

        # Fresh raw clutter snapshots for an easy bin (output_power expects
        # unconjugated data; the conjugation lives in the training rows).
        test_stag = doppler_filter(generate_cpi(params, scenario, 9))
        bin_pos = params.num_easy_doppler // 2
        bin_id = params.easy_bins[bin_pos]
        snaps = test_stag[bin_id, : params.num_channels, :].T
        target = spatial_steering(params.num_channels, 0.0) * np.sqrt(
            params.num_channels
        )
        gain_db = sinr_improvement_db(
            adaptive[bin_pos, :, 0], quiescent[:, 0], target, snaps
        )
        assert gain_db > 5.0

    def test_cancellation_ratio_positive_for_adapted(self, params, rng):
        # Rank-1 interference: the adapted weight should cancel >20 dB.
        j = rng.standard_normal(6) + 1j * rng.standard_normal(6)
        snaps = np.outer(
            30 * (rng.standard_normal(500) + 1j * rng.standard_normal(500)), j
        )
        snaps += 0.01 * (rng.standard_normal((500, 6)) + 1j * rng.standard_normal((500, 6)))
        from repro.stap.lsq import qr_factor, solve_constrained

        steering = rng.standard_normal((6, 1)) + 1j * rng.standard_normal((6, 1))
        # Train on conjugated rows; evaluate w^H x on the raw snapshots.
        adapted = solve_constrained(qr_factor(np.conj(snaps)), 0.5 * np.eye(6), steering)
        ratio = cancellation_ratio_db(adapted[:, 0], steering[:, 0], snaps)
        assert ratio > 20.0
