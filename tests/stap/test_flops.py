"""Flop model vs the paper's Table 1."""

import pytest

from repro.radar import STAPParams
from repro.stap import flops


@pytest.fixture
def params():
    return STAPParams.paper()


class TestExactMatches:
    """Five of the seven tasks match Table 1 exactly."""

    def test_doppler(self, params):
        assert flops.doppler_flops(params) == flops.PAPER_TABLE1["doppler"]

    def test_easy_beamform(self, params):
        assert flops.easy_beamform_flops(params) == flops.PAPER_TABLE1["easy_beamform"]

    def test_hard_beamform(self, params):
        assert flops.hard_beamform_flops(params) == flops.PAPER_TABLE1["hard_beamform"]

    def test_pulse_compression(self, params):
        assert (
            flops.pulse_compression_flops(params)
            == flops.PAPER_TABLE1["pulse_compression"]
        )

    def test_cfar(self, params):
        assert flops.cfar_flops(params) == flops.PAPER_TABLE1["cfar"]


class TestCloseMatches:
    """The weight tasks involve unstated solve accounting; within 0.05 %."""

    @pytest.mark.parametrize("task", ["easy_weight", "hard_weight"])
    def test_within_tolerance(self, params, task):
        model = flops.TASK_FLOPS[task](params)
        paper = flops.PAPER_TABLE1[task]
        assert abs(model - paper) / paper < 5e-4

    def test_total_within_tolerance(self, params):
        total = flops.all_task_flops(params)["total"]
        assert abs(total - flops.PAPER_TABLE1["total"]) / flops.PAPER_TABLE1[
            "total"
        ] < 5e-4


class TestStructure:
    def test_hard_weight_dominates(self, params):
        # "The task of computing hard weights is the most computationally
        # demanding task.  The Doppler filter processing task is the second"
        counts = flops.all_task_flops(params)
        ordered = sorted(
            (name for name in flops.TASK_FLOPS), key=lambda n: -counts[n]
        )
        assert ordered[0] == "hard_weight"
        assert ordered[1] == "doppler"

    def test_cfar_is_cheapest(self, params):
        counts = flops.all_task_flops(params)
        assert min(flops.TASK_FLOPS, key=lambda n: counts[n]) == "cfar"

    def test_scaling_with_ranges(self):
        small = STAPParams.tiny()
        bigger = small.with_overrides(
            num_ranges=small.num_ranges * 2,
            range_segment_boundaries=(0, 48, 96),
        )
        # Beamforming is linear in K.
        assert flops.easy_beamform_flops(bigger) == 2 * flops.easy_beamform_flops(small)

    def test_table_renders(self, params):
        text = flops.flops_table(params)
        assert "doppler" in text and "total" in text

    def test_all_positive_at_tiny_scale(self):
        counts = flops.all_task_flops(STAPParams.tiny())
        assert all(v > 0 for v in counts.values())
