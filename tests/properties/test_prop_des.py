"""Property-based tests of the DES engine's core guarantees."""

from hypothesis import given, settings, strategies as st

from repro.des import Simulator, Resource


@st.composite
def timeout_schedules(draw):
    """A set of processes, each sleeping through a list of delays."""
    return draw(
        st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=1,
                max_size=5,
            ),
            min_size=1,
            max_size=6,
        )
    )


class TestClockInvariants:
    @given(timeout_schedules())
    @settings(max_examples=60, deadline=None)
    def test_trace_times_never_decrease(self, schedules):
        sim = Simulator(trace=True)

        def sleeper(sim, delays):
            for d in delays:
                yield sim.timeout(d)

        for delays in schedules:
            sim.process(sleeper(sim, delays))
        sim.run()
        assert sim.tracer.times_are_monotone()

    @given(timeout_schedules())
    @settings(max_examples=60, deadline=None)
    def test_final_time_is_max_schedule(self, schedules):
        sim = Simulator()

        def sleeper(sim, delays):
            for d in delays:
                yield sim.timeout(d)

        for delays in schedules:
            sim.process(sleeper(sim, delays))
        sim.run()
        assert sim.now == max(sum(d) for d in schedules)

    @given(timeout_schedules())
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, schedules):
        def one_run():
            sim = Simulator(trace=True)

            def sleeper(sim, delays):
                for d in delays:
                    yield sim.timeout(d)

            for delays in schedules:
                sim.process(sleeper(sim, delays))
            sim.run()
            return [(r.time, r.kind, r.name) for r in sim.tracer]

        assert one_run() == one_run()


class TestResourceInvariants:
    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(st.floats(min_value=0.01, max_value=3.0), min_size=1, max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded_and_work_conserving(self, capacity, holds):
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        active = []
        max_active = []

        def worker(sim, res, hold):
            yield res.request()
            try:
                active.append(1)
                max_active.append(len(active))
                yield sim.timeout(hold)
            finally:
                active.pop()
                res.release()

        for hold in holds:
            sim.process(worker(sim, res, hold))
        sim.run()
        assert max(max_active) <= capacity
        assert res.total_grants == len(holds)
        # Work conservation: total time >= critical-path bound.
        assert sim.now >= max(holds)
        assert sim.now <= sum(holds) + 1e-9
