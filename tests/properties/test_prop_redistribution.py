"""Property-based tests: redistribution plans stay complete and disjoint
for arbitrary processor assignments."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.assignment import Assignment
from repro.core.layout import PipelineLayout
from repro.core.redistribution import TAG_CODES, hard_training_cells
from repro.radar import STAPParams
from repro.scheduling.model import _edge_volumes


@st.composite
def assignments(draw):
    params = STAPParams.tiny()
    counts = (
        draw(st.integers(min_value=1, max_value=8)),   # doppler (K=48)
        draw(st.integers(min_value=1, max_value=8)),   # easy weight (<=8)
        draw(st.integers(min_value=1, max_value=16)),  # hard weight units (16)
        draw(st.integers(min_value=1, max_value=8)),   # easy BF
        draw(st.integers(min_value=1, max_value=8)),   # hard BF
        draw(st.integers(min_value=1, max_value=16)),  # pulse compression
        draw(st.integers(min_value=1, max_value=16)),  # cfar
    )
    return params, Assignment(*counts, name="prop")


class TestPlanInvariants:
    @given(assignments())
    @settings(max_examples=60, deadline=None)
    def test_total_bytes_independent_of_partitioning(self, data):
        """The data that must cross each edge is fixed by the algorithm;
        the assignment only chooses how it is cut into messages."""
        params, assignment = data
        layout = PipelineLayout(params, assignment)
        volumes = _edge_volumes(params)
        for edge in TAG_CODES:
            assert layout.plan(edge).total_bytes == volumes[edge]

    @given(assignments())
    @settings(max_examples=40, deadline=None)
    def test_bf_k_slices_tile(self, data):
        params, assignment = data
        layout = PipelineLayout(params, assignment)
        for edge in ("dop_to_easy_bf", "dop_to_hard_bf"):
            plan = layout.plan(edge)
            for dst in range(plan.dst_size):
                spans = sorted(
                    (m.k_start, m.k_stop) for m in plan.recvs_of(dst)
                )
                cursor = 0
                for lo, hi in spans:
                    assert lo == cursor
                    cursor = hi
                assert cursor == params.num_ranges

    @given(assignments())
    @settings(max_examples=40, deadline=None)
    def test_hard_units_fully_supplied(self, data):
        params, assignment = data
        layout = PipelineLayout(params, assignment)
        plan = layout.plan("dop_to_hard_weight")
        per_segment = hard_training_cells(params)
        unit_partition = layout.hard_weight_units
        for dst in range(plan.dst_size):
            rows_by_unit = {}
            for message in plan.recvs_of(dst):
                for seg in message.segments:
                    for b in seg.bin_ids:
                        rows_by_unit.setdefault((seg.segment, int(b)), []).extend(
                            seg.row_positions.tolist()
                        )
            for seg_idx, bins in unit_partition.segment_bins_of(dst).items():
                for b in bins:
                    rows = sorted(rows_by_unit.get((seg_idx, int(b)), []))
                    assert rows == list(range(len(per_segment[seg_idx])))

    @given(assignments())
    @settings(max_examples=40, deadline=None)
    def test_pc_bins_covered_exactly_once(self, data):
        params, assignment = data
        layout = PipelineLayout(params, assignment)
        easy = layout.plan("easy_bf_to_pc")
        hard = layout.plan("hard_bf_to_pc")
        for dst in range(layout.pc_bins.parts):
            ids = np.concatenate(
                [m.ids for m in easy.recvs_of(dst)]
                + [m.ids for m in hard.recvs_of(dst)]
                + [np.empty(0, dtype=int)]
            )
            assert np.array_equal(np.sort(ids), layout.pc_bins.ids_of(dst))

    @given(assignments())
    @settings(max_examples=30, deadline=None)
    def test_send_recv_views_agree(self, data):
        params, assignment = data
        layout = PipelineLayout(params, assignment)
        for edge in TAG_CODES:
            plan = layout.plan(edge)
            sent = sum(plan.send_bytes_of(s) for s in range(plan.src_size))
            recvd = sum(plan.recv_bytes_of(d) for d in range(plan.dst_size))
            assert sent == recvd == plan.total_bytes
