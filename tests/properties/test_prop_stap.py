"""Property-based tests of the STAP numerical kernels."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.radar import STAPParams
from repro.stap.cfar import cfar_detect, reference_cell_counts, cfar_threshold_factor
from repro.stap.doppler import doppler_filter_block
from repro.stap.lsq import qr_append_rows, qr_factor, solve_constrained


def complex_matrices(max_rows=24, max_cols=8):
    shapes = st.tuples(
        st.integers(min_value=1, max_value=max_rows),
        st.integers(min_value=1, max_value=max_cols),
    )
    return shapes.flatmap(
        lambda shape: st.tuples(
            hnp.arrays(
                np.float64,
                shape,
                elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
            ),
            hnp.arrays(
                np.float64,
                shape,
                elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
            ),
        ).map(lambda pair: pair[0] + 1j * pair[1])
    )


class TestQrProperties:
    @given(complex_matrices())
    @settings(max_examples=80, deadline=None)
    def test_information_matrix_preserved(self, a):
        r = qr_factor(a)
        assert np.allclose(r.conj().T @ r, a.conj().T @ a, atol=1e-8)

    @given(complex_matrices(max_rows=12, max_cols=5), complex_matrices(max_rows=12, max_cols=5))
    @settings(max_examples=60, deadline=None)
    def test_append_equals_concatenate(self, a, b):
        if a.shape[1] != b.shape[1]:
            b = b[:, : a.shape[1]]
            if b.shape[1] != a.shape[1]:
                return
        r_inc = qr_append_rows(qr_factor(a), b)
        r_cat = qr_factor(np.vstack([a, b]))
        assert np.allclose(r_inc.conj().T @ r_inc, r_cat.conj().T @ r_cat, atol=1e-8)

    @given(
        complex_matrices(max_rows=20, max_cols=6),
        st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_forgetting_contracts_information(self, a, forget):
        r0 = qr_factor(a)
        info0 = r0.conj().T @ r0
        r1 = qr_append_rows(r0, np.zeros((1, a.shape[1])), forget=forget)
        info1 = r1.conj().T @ r1
        assert np.allclose(info1, forget**2 * info0, atol=1e-8)


class TestSolveProperties:
    @given(complex_matrices(max_rows=20, max_cols=6))
    @settings(max_examples=60, deadline=None)
    def test_weights_finite_and_normalized(self, a):
        n = a.shape[1]
        steering = np.ones((n, 2), dtype=complex) / np.sqrt(n)
        w = solve_constrained(qr_factor(a), 0.5 * np.eye(n), steering)
        assert np.all(np.isfinite(w))
        norms = np.linalg.norm(w, axis=0)
        assert np.allclose(norms[norms > 0], 1.0)


class TestDopplerProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=1_000_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_linearity(self, k_cells, seed):
        params = STAPParams.tiny()
        rng = np.random.default_rng(seed)
        shape = (k_cells, params.num_channels, params.num_pulses)
        a = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        b = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        out_sum = doppler_filter_block(a + 2.0 * b, params)
        out_parts = doppler_filter_block(a, params) + 2.0 * doppler_filter_block(b, params)
        assert np.allclose(out_sum, out_parts, atol=1e-9)

    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=30, deadline=None)
    def test_block_decomposition_matches_full(self, seed):
        """Doppler filtering a K-slice equals slicing the full result —
        the property the parallel Doppler task's correctness rests on."""
        params = STAPParams.tiny()
        rng = np.random.default_rng(seed)
        shape = (params.num_ranges, params.num_channels, params.num_pulses)
        cube = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        full = doppler_filter_block(cube, params)
        split = params.num_ranges // 3
        left = doppler_filter_block(cube[:split], params)
        right = doppler_filter_block(cube[split:], params)
        assert np.allclose(np.concatenate([left, right], axis=2), full)


class TestCfarProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=1e-8, max_value=0.5),
    )
    @settings(max_examples=100, deadline=None)
    def test_threshold_factor_positive_and_decreasing_in_n(self, n, pfa):
        alpha_n = cfar_threshold_factor(n, pfa)
        alpha_2n = cfar_threshold_factor(2 * n, pfa)
        assert alpha_n > 0
        assert alpha_2n < alpha_n

    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=30, deadline=None)
    def test_scale_invariance(self, seed):
        """CFAR decisions are invariant to a global power scale — the
        'constant' in constant false alarm rate."""
        params = STAPParams.tiny()
        rng = np.random.default_rng(seed)
        power = rng.exponential(
            1.0, size=(params.num_doppler, params.num_beams, params.num_ranges)
        ).astype(params.real_dtype)
        base = {(d.doppler_bin, d.beam, d.range_cell) for d in cfar_detect(power, params)}
        scaled = {
            (d.doppler_bin, d.beam, d.range_cell)
            for d in cfar_detect(1000.0 * power, params)
        }
        assert base == scaled

    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_pfa(self, seed):
        """A stricter Pfa can only remove detections, never add them."""
        params = STAPParams.tiny()
        rng = np.random.default_rng(seed)
        power = rng.exponential(
            1.0, size=(params.num_doppler, params.num_beams, params.num_ranges)
        ).astype(params.real_dtype)
        loose = {(d.doppler_bin, d.beam, d.range_cell)
                 for d in cfar_detect(power, params, pfa=1e-2)}
        strict = {(d.doppler_bin, d.beam, d.range_cell)
                  for d in cfar_detect(power, params, pfa=1e-4)}
        assert strict <= loose

    def test_reference_counts_bounded(self):
        params = STAPParams.tiny()
        counts = reference_cell_counts(params)
        assert counts.max() <= 2 * params.cfar_window
