"""Property-based tests of mesh routing."""

from hypothesis import given, settings, strategies as st

from repro.machine import Mesh2D


@st.composite
def mesh_and_pair(draw):
    width = draw(st.integers(min_value=1, max_value=12))
    height = draw(st.integers(min_value=1, max_value=12))
    mesh = Mesh2D(width, height)
    src = draw(st.integers(min_value=0, max_value=mesh.num_nodes - 1))
    dst = draw(st.integers(min_value=0, max_value=mesh.num_nodes - 1))
    return mesh, src, dst


class TestRoutingProperties:
    @given(mesh_and_pair())
    @settings(max_examples=200, deadline=None)
    def test_route_is_shortest_path(self, data):
        mesh, src, dst = data
        route = mesh.route(src, dst)
        assert len(route) == mesh.hop_distance(src, dst)

    @given(mesh_and_pair())
    @settings(max_examples=200, deadline=None)
    def test_route_links_are_adjacent_and_chained(self, data):
        mesh, src, dst = data
        route = mesh.route(src, dst)
        if not route:
            assert src == dst
            return
        assert route[0].src == src
        assert route[-1].dst == dst
        for link in route:
            assert mesh.hop_distance(link.src, link.dst) == 1
        for a, b in zip(route, route[1:]):
            assert a.dst == b.src

    @given(mesh_and_pair())
    @settings(max_examples=200, deadline=None)
    def test_hop_distance_symmetric(self, data):
        mesh, src, dst = data
        assert mesh.hop_distance(src, dst) == mesh.hop_distance(dst, src)

    @given(mesh_and_pair())
    @settings(max_examples=100, deadline=None)
    def test_route_never_revisits_a_node(self, data):
        mesh, src, dst = data
        route = mesh.route(src, dst)
        visited = [src] + [link.dst for link in route]
        assert len(visited) == len(set(visited))
