"""Property-based certification of the greedy throughput allocator.

The optimizer module claims the bottleneck-first greedy is *exact* for
the max-bottleneck objective (exchange argument over decreasing convex
``T_i``).  The unit suite pins that at one budget on one parameter set;
this property pins it across randomized tiny parameter variants and
budgets, against brute force.

The exhaustive grid caps each task at ``budget - 6`` nodes, which is
also the most greedy can ever give one task (the other six keep their
mandatory single node) — so the cap never binds either search and the
brute-force result is the true optimum.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro import STAPParams
from repro.scheduling import (
    AnalyticPipelineModel,
    exhaustive_search,
    optimize_throughput,
)


@st.composite
def tiny_variants(draw):
    """STAPParams.tiny() with a few independently-safe axes randomized.

    Every draw respects the validation constraints: hard Doppler bins
    stay below the pulse count, training lengths stay within the range
    extent, and the segment boundaries are left at tiny()'s.
    """
    return replace(
        STAPParams.tiny(),
        num_beams=draw(st.sampled_from((2, 3, 4))),
        num_channels=draw(st.sampled_from((4, 8))),
        num_hard_doppler=draw(st.sampled_from((4, 6, 8))),
        easy_train_per_cpi=draw(st.sampled_from((4, 8, 16))),
        hard_train_samples=draw(st.sampled_from((8, 10, 12))),
        waveform_length=draw(st.sampled_from((4, 6, 8))),
        cfar_window=draw(st.sampled_from((2, 4))),
    )


@given(params=tiny_variants(), budget=st.integers(min_value=8, max_value=11))
@settings(max_examples=12, deadline=None)
def test_greedy_throughput_matches_exhaustive(params, budget):
    model = AnalyticPipelineModel(params)
    greedy = optimize_throughput(model, budget)
    best = exhaustive_search(
        model, budget, objective="throughput", max_per_task=budget - 6
    )
    greedy_thr = model.throughput(greedy)
    best_thr = model.throughput(best)
    assert greedy.total_nodes <= budget
    # Greedy can never beat the true optimum, and exactness says it
    # cannot fall short either (tolerance absorbs float noise only).
    assert greedy_thr <= best_thr * (1 + 1e-9)
    assert greedy_thr >= best_thr * (1 - 1e-9)
