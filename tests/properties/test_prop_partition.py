"""Property-based tests: partitions tile their domains exactly."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.partition import (
    BlockPartition,
    HardUnitPartition,
    block_of,
    block_ranges,
)


@st.composite
def totals_and_parts(draw):
    total = draw(st.integers(min_value=0, max_value=400))
    parts = draw(st.integers(min_value=1, max_value=50))
    return total, parts


class TestBlockRangesProperties:
    @given(totals_and_parts())
    @settings(max_examples=200, deadline=None)
    def test_blocks_tile_range(self, data):
        total, parts = data
        ranges = block_ranges(total, parts)
        assert len(ranges) == parts
        cursor = 0
        for lo, hi in ranges:
            assert lo == cursor
            assert hi >= lo
            cursor = hi
        assert cursor == total

    @given(totals_and_parts())
    @settings(max_examples=200, deadline=None)
    def test_balance_within_one(self, data):
        total, parts = data
        sizes = [hi - lo for lo, hi in block_ranges(total, parts)]
        assert max(sizes) - min(sizes) <= 1

    @given(totals_and_parts())
    @settings(max_examples=100, deadline=None)
    def test_block_of_consistent(self, data):
        total, parts = data
        if total == 0:
            return
        ranges = block_ranges(total, parts)
        for index in range(total):
            owner = block_of(total, parts, index)
            lo, hi = ranges[owner]
            assert lo <= index < hi


@st.composite
def id_partitions(draw):
    ids = draw(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=64,
                 unique=True)
    )
    parts = draw(st.integers(min_value=1, max_value=len(ids)))
    return BlockPartition.of_ids(sorted(ids), parts)


class TestBlockPartitionProperties:
    @given(id_partitions())
    @settings(max_examples=150, deadline=None)
    def test_parts_cover_ids_disjointly(self, partition):
        seen = []
        for part in range(partition.parts):
            seen.extend(partition.ids_of(part).tolist())
        assert seen == list(partition.ids)

    @given(id_partitions(), st.data())
    @settings(max_examples=150, deadline=None)
    def test_local_positions_roundtrip(self, partition, data):
        part = data.draw(st.integers(min_value=0, max_value=partition.parts - 1))
        mine = partition.ids_of(part)
        if mine.size == 0:
            return
        positions = partition.local_positions(part, mine)
        assert np.array_equal(positions, np.arange(mine.size))

    @given(id_partitions(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_intersection_subset_of_both(self, partition, data):
        part = data.draw(st.integers(min_value=0, max_value=partition.parts - 1))
        others = data.draw(
            st.lists(st.integers(min_value=0, max_value=10_000), max_size=40)
        )
        inter = partition.intersect(part, others)
        assert set(inter.tolist()) <= set(partition.ids_of(part).tolist())
        assert set(inter.tolist()) <= set(others)


@st.composite
def unit_partitions(draw):
    bins = draw(st.integers(min_value=1, max_value=32))
    segments = draw(st.integers(min_value=1, max_value=8))
    parts = draw(st.integers(min_value=1, max_value=bins * segments))
    return HardUnitPartition(
        bin_ids=tuple(range(100, 100 + bins)), num_segments=segments, parts=parts
    )


class TestHardUnitProperties:
    @given(unit_partitions())
    @settings(max_examples=150, deadline=None)
    def test_units_cover_disjointly(self, partition):
        all_units = []
        for part in range(partition.parts):
            all_units.extend(partition.units_of(part).tolist())
        assert all_units == list(range(partition.num_units))

    @given(unit_partitions())
    @settings(max_examples=150, deadline=None)
    def test_segment_bins_reconstruct_units(self, partition):
        total = 0
        for part in range(partition.parts):
            for seg, bins in partition.segment_bins_of(part).items():
                assert 0 <= seg < partition.num_segments
                total += len(bins)
        assert total == partition.num_units

    @given(unit_partitions())
    @settings(max_examples=100, deadline=None)
    def test_decompose_bijective(self, partition):
        units = np.arange(partition.num_units)
        bin_pos, segs = partition.decompose(units)
        reconstructed = bin_pos * partition.num_segments + segs
        assert np.array_equal(reconstructed, units)
