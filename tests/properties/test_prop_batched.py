"""Property-based tests: batched kernels vs their per-item loop references.

The batched ``*_stacked`` kernels of :mod:`repro.stap.lsq` and the batched
weight computations built on them claim *bit identity* with the per-bin
loops they replaced: each stack slice dispatches through the same LAPACK
kernels as the per-matrix call, so results must not merely be close — they
must be equal, and independent of how slices are grouped into batches
(which is what keeps parallel tasks identical to the sequential
reference).  These properties pin that claim across random shapes and
values.

The one documented exception: a single-column right-hand side (M=1) may
differ by a few ULP because BLAS dispatches ``gemv`` instead of ``gemm``.
The pipeline always carries M >= 2 beams, so the strategies below draw
M >= 2 and assert exact equality.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.stap.easy_weights import compute_easy_weights, compute_easy_weights_loop
from repro.stap.hard_weights import (
    compute_hard_weights,
    compute_hard_weights_loop,
    update_r_block,
    update_r_block_loop,
)
from repro.stap.lsq import (
    qr_append_rows,
    qr_append_rows_stacked,
    qr_factor,
    qr_factor_stacked,
    quiescent_weights,
    quiescent_weights_stacked,
    solve_constrained,
    solve_constrained_stacked,
)


def complex_stacks(max_batch=5, max_rows=12, max_cols=6, min_rows=1):
    """Strategy for (batch, m, n) complex stacks with bounded entries."""
    shapes = st.tuples(
        st.integers(min_value=1, max_value=max_batch),
        st.integers(min_value=min_rows, max_value=max_rows),
        st.integers(min_value=1, max_value=max_cols),
    )
    return shapes.flatmap(_complex_array)


def _complex_array(shape):
    # Near-denormal magnitudes are mapped to exact zero: a ~1e-308 training
    # level drives lstsq weights to inf and normalization to NaN on *both*
    # paths, and array_equal(NaN, NaN) is False.  Zeros still exercise the
    # degenerate/fallback branches; real training data is O(1).
    part = hnp.arrays(
        np.float64,
        shape,
        elements=st.floats(min_value=-5, max_value=5, allow_nan=False).map(
            lambda v: 0.0 if abs(v) < 1e-6 else v
        ),
    )
    return st.tuples(part, part).map(lambda pair: pair[0] + 1j * pair[1])


class TestStackedQr:
    @given(complex_stacks())
    @settings(max_examples=60, deadline=None)
    def test_qr_factor_stacked_equals_loop(self, stack):
        batched = qr_factor_stacked(stack)
        for idx in range(stack.shape[0]):
            assert np.array_equal(batched[idx], qr_factor(stack[idx]))

    @given(complex_stacks(max_rows=5, max_cols=5), st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_qr_append_rows_stacked_equals_loop(self, rows, forget):
        batch, _, n = rows.shape
        r_old = qr_factor_stacked(np.conj(rows[:, ::-1, :]) + 0.5)
        batched = qr_append_rows_stacked(r_old, rows, forget=forget)
        for idx in range(batch):
            expected = qr_append_rows(r_old[idx], rows[idx], forget=forget)
            assert np.array_equal(batched[idx], expected)

    @given(complex_stacks(max_batch=4, max_rows=10, max_cols=4))
    @settings(max_examples=40, deadline=None)
    def test_batch_composition_independence(self, stack):
        """Factoring a sub-batch equals slicing the full batch's result."""
        full = qr_factor_stacked(stack)
        for split in range(stack.shape[0] + 1):
            head = qr_factor_stacked(stack[:split])
            tail = qr_factor_stacked(stack[split:])
            assert np.array_equal(np.concatenate([head, tail]), full)


class TestStackedSolve:
    @given(
        complex_stacks(max_batch=4, max_rows=12, max_cols=5, min_rows=1),
        st.integers(min_value=2, max_value=4),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_solve_constrained_stacked_equals_loop(
        self, data, num_beams, normalize, degenerate_first
    ):
        batch, _, n = data.shape
        rng = np.random.default_rng(n + num_beams)
        r_data = qr_factor_stacked(data)
        if degenerate_first:
            # Exercise the per-slice lstsq fallback alongside healthy slices.
            r_data[0] = 0.0
        c = max(1, n // 2)
        constraints = (
            rng.standard_normal((batch, c, n)) + 1j * rng.standard_normal((batch, c, n))
        )
        steering = rng.standard_normal((c, num_beams)) + 1j * rng.standard_normal(
            (c, num_beams)
        )
        batched = solve_constrained_stacked(
            r_data, constraints, steering, normalize=normalize
        )
        for idx in range(batch):
            expected = solve_constrained(
                r_data[idx], constraints[idx], steering, normalize=normalize
            )
            assert np.array_equal(batched[idx], expected)


class TestStackedQuiescent:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_quiescent_stacked_equals_loop(self, J, M, num_bins, seed):
        rng = np.random.default_rng(seed)
        steering = rng.standard_normal((J, M)) + 1j * rng.standard_normal((J, M))
        phases = np.exp(2j * np.pi * rng.random(num_bins))
        batched = quiescent_weights_stacked(steering, phases)
        for idx in range(num_bins):
            expected = quiescent_weights(steering, copies=2, phases=[1.0, phases[idx]])
            assert np.array_equal(batched[idx], expected)


class TestBatchedWeightKernels:
    @given(
        complex_stacks(max_batch=4, max_rows=14, max_cols=4, min_rows=1),
        st.integers(min_value=2, max_value=3),
        st.floats(min_value=0.01, max_value=2.0),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_compute_easy_weights_equals_loop(self, stacked, num_beams, kappa, seed):
        J = stacked.shape[2]
        rng = np.random.default_rng(seed)
        steering = rng.standard_normal((J, num_beams)) + 1j * rng.standard_normal(
            (J, num_beams)
        )
        assert np.array_equal(
            compute_easy_weights(stacked, steering, kappa),
            compute_easy_weights_loop(stacked, steering, kappa),
        )

    @given(
        st.integers(min_value=1, max_value=3),   # segments
        st.integers(min_value=1, max_value=4),   # bins
        st.integers(min_value=1, max_value=3),   # J
        st.integers(min_value=2, max_value=3),   # beams
        st.floats(min_value=0.2, max_value=1.0),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_hard_update_and_solve_equal_loop(self, S, B, J, M, forget, seed):
        rng = np.random.default_rng(seed)
        n2 = 2 * J
        training = rng.standard_normal((S, B, 2 * n2, n2)) + 1j * rng.standard_normal(
            (S, B, 2 * n2, n2)
        )
        state_batched = np.zeros((S, B, n2, n2), dtype=complex)
        state_loop = np.zeros((S, B, n2, n2), dtype=complex)
        for _ in range(2):  # two recursion steps: cold + warm state
            update_r_block(state_batched, training, forget)
            update_r_block_loop(state_loop, training, forget)
            assert np.array_equal(state_batched, state_loop)
        steering = rng.standard_normal((J, M)) + 1j * rng.standard_normal((J, M))
        phases = np.exp(2j * np.pi * rng.random(B))
        assert np.array_equal(
            compute_hard_weights(state_batched, steering, phases, 1.5, 0.7),
            compute_hard_weights_loop(state_loop, steering, phases, 1.5, 0.7),
        )
