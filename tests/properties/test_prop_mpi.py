"""Property-based tests of SimMPI matching: arbitrary traffic patterns
always deliver every message exactly once, in per-(source, tag) order."""

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.des import Simulator
from repro.machine import afrl_paragon
from repro.mpi import World, ANY_SOURCE


@st.composite
def traffic_patterns(draw):
    """A random multiset of (src, dst, tag) messages among a few ranks."""
    num_ranks = draw(st.integers(min_value=2, max_value=5))
    messages = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_ranks - 1),  # src
                st.integers(min_value=0, max_value=num_ranks - 1),  # dst
                st.integers(min_value=0, max_value=3),  # tag
            ).filter(lambda m: m[0] != m[1]),
            min_size=1,
            max_size=25,
        )
    )
    return num_ranks, messages


class TestDeliveryProperties:
    @given(traffic_patterns(), st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_every_message_delivered_exactly_once(self, pattern, use_wildcard):
        num_ranks, messages = pattern
        sends_by_rank = defaultdict(list)
        expected_by_dst = defaultdict(list)
        for seq, (src, dst, tag) in enumerate(messages):
            sends_by_rank[src].append((dst, tag, seq))
            expected_by_dst[dst].append((src, tag, seq))

        sim = Simulator()
        world = World(sim, afrl_paragon(), num_ranks=num_ranks, contention="none")
        received = defaultdict(list)

        def program(ctx):
            requests = []
            for dst, tag, seq in sends_by_rank.get(ctx.rank, []):
                requests.append(ctx.isend(seq, dest=dst, tag=tag, nbytes=64))
            for src, tag, _seq in expected_by_dst.get(ctx.rank, []):
                if use_wildcard:
                    msg = yield ctx.irecv(source=ANY_SOURCE, tag=tag)
                else:
                    msg = yield ctx.irecv(source=src, tag=tag)
                received[ctx.rank].append((msg.source, msg.tag, msg.payload))
            if requests:
                yield ctx.wait_all(requests)

        world.spawn_all(program)
        sim.run()

        # Exactly-once delivery: payload seq numbers form the exact multiset.
        got = sorted(seq for msgs in received.values() for (_s, _t, seq) in msgs)
        assert got == sorted(range(len(messages)))
        assert world.outstanding_operations() == 0

    @given(traffic_patterns())
    @settings(max_examples=60, deadline=None)
    def test_non_overtaking_per_source_tag(self, pattern):
        num_ranks, messages = pattern
        sends_by_rank = defaultdict(list)
        expected_by_dst = defaultdict(list)
        for seq, (src, dst, tag) in enumerate(messages):
            sends_by_rank[src].append((dst, tag, seq))
            expected_by_dst[dst].append((src, tag, seq))

        sim = Simulator()
        world = World(sim, afrl_paragon(), num_ranks=num_ranks, contention="none")
        received = defaultdict(list)

        def program(ctx):
            requests = [
                ctx.isend(seq, dest=dst, tag=tag, nbytes=64)
                for dst, tag, seq in sends_by_rank.get(ctx.rank, [])
            ]
            for src, tag, _seq in expected_by_dst.get(ctx.rank, []):
                msg = yield ctx.irecv(source=src, tag=tag)
                received[ctx.rank].append((msg.source, msg.tag, msg.payload))
            if requests:
                yield ctx.wait_all(requests)

        world.spawn_all(program)
        sim.run()

        # Within one (dst, source, tag) channel, seq numbers arrive in
        # posting order (MPI's non-overtaking guarantee).
        for dst, msgs in received.items():
            per_channel = defaultdict(list)
            for source, tag, seq in msgs:
                per_channel[(source, tag)].append(seq)
            for seqs in per_channel.values():
                assert seqs == sorted(seqs)
