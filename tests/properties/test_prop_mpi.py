"""Property-based tests of SimMPI matching: arbitrary traffic patterns
always deliver every message exactly once, in per-(source, tag) order."""

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.des import Simulator
from repro.machine import afrl_paragon
from repro.mpi import World, ANY_SOURCE, ANY_TAG


@st.composite
def traffic_patterns(draw):
    """A random multiset of (src, dst, tag) messages among a few ranks."""
    num_ranks = draw(st.integers(min_value=2, max_value=5))
    messages = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_ranks - 1),  # src
                st.integers(min_value=0, max_value=num_ranks - 1),  # dst
                st.integers(min_value=0, max_value=3),  # tag
            ).filter(lambda m: m[0] != m[1]),
            min_size=1,
            max_size=25,
        )
    )
    return num_ranks, messages


class TestDeliveryProperties:
    @given(traffic_patterns(), st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_every_message_delivered_exactly_once(self, pattern, use_wildcard):
        num_ranks, messages = pattern
        sends_by_rank = defaultdict(list)
        expected_by_dst = defaultdict(list)
        for seq, (src, dst, tag) in enumerate(messages):
            sends_by_rank[src].append((dst, tag, seq))
            expected_by_dst[dst].append((src, tag, seq))

        sim = Simulator()
        world = World(sim, afrl_paragon(), num_ranks=num_ranks, contention="none")
        received = defaultdict(list)

        def program(ctx):
            requests = []
            for dst, tag, seq in sends_by_rank.get(ctx.rank, []):
                requests.append(ctx.isend(seq, dest=dst, tag=tag, nbytes=64))
            for src, tag, _seq in expected_by_dst.get(ctx.rank, []):
                if use_wildcard:
                    msg = yield ctx.irecv(source=ANY_SOURCE, tag=tag)
                else:
                    msg = yield ctx.irecv(source=src, tag=tag)
                received[ctx.rank].append((msg.source, msg.tag, msg.payload))
            if requests:
                yield ctx.wait_all(requests)

        world.spawn_all(program)
        sim.run()

        # Exactly-once delivery: payload seq numbers form the exact multiset.
        got = sorted(seq for msgs in received.values() for (_s, _t, seq) in msgs)
        assert got == sorted(range(len(messages)))
        assert world.outstanding_operations() == 0

    @given(traffic_patterns())
    @settings(max_examples=60, deadline=None)
    def test_non_overtaking_per_source_tag(self, pattern):
        num_ranks, messages = pattern
        sends_by_rank = defaultdict(list)
        expected_by_dst = defaultdict(list)
        for seq, (src, dst, tag) in enumerate(messages):
            sends_by_rank[src].append((dst, tag, seq))
            expected_by_dst[dst].append((src, tag, seq))

        sim = Simulator()
        world = World(sim, afrl_paragon(), num_ranks=num_ranks, contention="none")
        received = defaultdict(list)

        def program(ctx):
            requests = [
                ctx.isend(seq, dest=dst, tag=tag, nbytes=64)
                for dst, tag, seq in sends_by_rank.get(ctx.rank, [])
            ]
            for src, tag, _seq in expected_by_dst.get(ctx.rank, []):
                msg = yield ctx.irecv(source=src, tag=tag)
                received[ctx.rank].append((msg.source, msg.tag, msg.payload))
            if requests:
                yield ctx.wait_all(requests)

        world.spawn_all(program)
        sim.run()

        # Within one (dst, source, tag) channel, seq numbers arrive in
        # posting order (MPI's non-overtaking guarantee).
        for dst, msgs in received.items():
            per_channel = defaultdict(list)
            for source, tag, seq in msgs:
                per_channel[(source, tag)].append(seq)
            for seqs in per_channel.values():
                assert seqs == sorted(seqs)

    @given(
        traffic_patterns(),
        st.lists(st.integers(min_value=0, max_value=3), min_size=5, max_size=5),
    )
    @settings(max_examples=80, deadline=None)
    def test_non_overtaking_under_wildcard_interleavings(self, pattern, rank_kinds):
        """Indexed matching keeps channel order with wildcard receivers.

        Each *rank* receives with one of four patterns — exact,
        ANY_SOURCE, ANY_TAG, or both wildcards — so wildcard and exact
        matching interleave freely across the simulation.  (The kind is
        uniform per rank: mixing kinds within one rank can steal a
        message an exact receive posted later depends on, which deadlocks
        legally — that is MPI semantics, not a matcher bug.)  Whatever
        the interleaving, MPI requires: every message delivered exactly
        once, each delivery satisfying its request's pattern, and — the
        non-overtaking guarantee the exact-key queues plus the shared
        posted-order sequence numbers must preserve — payloads within one
        (source, tag) channel arriving in posting order.
        """
        num_ranks, messages = pattern
        sends_by_rank = defaultdict(list)
        expected_by_dst = defaultdict(list)
        for seq, (src, dst, tag) in enumerate(messages):
            sends_by_rank[src].append((dst, tag, seq))
            expected_by_dst[dst].append((src, tag, seq))

        sim = Simulator()
        world = World(sim, afrl_paragon(), num_ranks=num_ranks, contention="none")
        received = defaultdict(list)

        def program(ctx):
            requests = [
                ctx.isend(seq, dest=dst, tag=tag, nbytes=64)
                for dst, tag, seq in sends_by_rank.get(ctx.rank, [])
            ]
            kind = rank_kinds[ctx.rank]
            for src, tag, _seq in expected_by_dst.get(ctx.rank, []):
                want_src = ANY_SOURCE if kind in (1, 3) else src
                want_tag = ANY_TAG if kind in (2, 3) else tag
                msg = yield ctx.irecv(source=want_src, tag=want_tag)
                received[ctx.rank].append((want_src, want_tag, msg))
            if requests:
                yield ctx.wait_all(requests)

        world.spawn_all(program)
        sim.run()

        got = sorted(
            msg.payload for msgs in received.values() for (_s, _t, msg) in msgs
        )
        assert got == sorted(range(len(messages)))
        assert world.outstanding_operations() == 0

        for dst, msgs in received.items():
            per_channel = defaultdict(list)
            for want_src, want_tag, msg in msgs:
                # Each delivery satisfies the pattern of the request that
                # received it (source is reported as a communicator rank;
                # the world communicator's mapping is the identity).
                if want_src != ANY_SOURCE:
                    assert msg.source == want_src
                if want_tag != ANY_TAG:
                    assert msg.tag == want_tag
                per_channel[(msg.source, msg.tag)].append(msg.payload)
            for seqs in per_channel.values():
                assert seqs == sorted(seqs)
