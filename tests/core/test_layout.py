"""PipelineLayout: partitions, rank mapping, sensor accounting."""

import numpy as np
import pytest

from repro.core import Assignment, TASK_NAMES
from repro.core.layout import EDGE_TOPOLOGY, PipelineLayout
from repro.errors import ConfigurationError
from repro.radar import STAPParams


@pytest.fixture
def layout():
    return PipelineLayout(STAPParams.tiny(), Assignment(3, 2, 4, 2, 3, 2, 3, name="t"))


class TestPartitions:
    def test_partition_of_each_task(self, layout):
        for task in TASK_NAMES:
            assert layout.partition_of(task) is not None
        with pytest.raises(ConfigurationError):
            layout.partition_of("nope")

    def test_k_partition_covers_ranges(self, layout):
        params = layout.params
        cells = np.concatenate(
            [layout.k_partition.ids_of(p) for p in range(layout.k_partition.parts)]
        )
        assert np.array_equal(cells, np.arange(params.num_ranges))

    def test_bf_partitions_cover_bins(self, layout):
        params = layout.params
        easy = np.concatenate(
            [layout.easy_bf_bins.ids_of(p) for p in range(layout.easy_bf_bins.parts)]
        )
        assert np.array_equal(easy, params.easy_bins)
        hard = np.concatenate(
            [layout.hard_bf_bins.ids_of(p) for p in range(layout.hard_bf_bins.parts)]
        )
        assert np.array_equal(hard, params.hard_bins)


class TestTopology:
    def test_every_edge_has_a_plan(self, layout):
        for name, src, dst in EDGE_TOPOLOGY:
            plan = layout.plan(name)
            assert plan.src_task == src
            assert plan.dst_task == dst

    def test_in_out_edges(self, layout):
        assert layout.in_edges("doppler") == []
        assert set(layout.out_edges("doppler")) == {
            "dop_to_easy_weight",
            "dop_to_hard_weight",
            "dop_to_easy_bf",
            "dop_to_hard_bf",
        }
        assert layout.in_edges("cfar") == ["pc_to_cfar"]
        assert layout.out_edges("cfar") == []

    def test_bf_heavier_than_weight_edges(self, layout):
        # "thicker arrows ... the amount of data sent to the beamforming
        # tasks is more than the amount of data sent to the weight tasks."
        assert (
            layout.plan("dop_to_easy_bf").total_bytes
            > layout.plan("dop_to_easy_weight").total_bytes
        )
        assert (
            layout.plan("dop_to_hard_bf").total_bytes
            > layout.plan("dop_to_hard_weight").total_bytes
        )


class TestRankMapping:
    def test_world_rank_roundtrip(self, layout):
        for task in TASK_NAMES:
            for local in range(layout.assignment.count_of(task)):
                world = layout.world_rank(task, local)
                assert layout.task_and_local(world) == (task, local)

    def test_total_ranks(self, layout):
        assert layout.total_ranks == layout.assignment.total_nodes

    def test_bad_local_rank_rejected(self, layout):
        with pytest.raises(ConfigurationError):
            layout.world_rank("doppler", 99)


class TestSensor:
    def test_sensor_bytes_sum_to_cube(self, layout):
        total = sum(
            layout.sensor_bytes_of(r) for r in range(layout.assignment.doppler)
        )
        assert total == layout.params.cpi_cube_bytes
