"""Modeled pipeline: scaling behaviour and the paper's qualitative results.

These tests assert the *shapes* the paper reports — linear speedups,
doubling-node-counts halves times, the Table 9/10 secondary effects — at a
reduced problem scale so each simulation takes well under a second.
"""

import pytest

from repro import Assignment, STAPParams, STAPPipeline
from repro.core.metrics import steady_state_slice


@pytest.fixture(scope="module")
def params():
    return STAPParams.small()


def run(params, counts, num_cpis=10, name="t", measured=False, **kwargs):
    pipeline = STAPPipeline(
        params, Assignment(*counts, name=name), num_cpis=num_cpis, **kwargs
    )
    return pipeline.run_measured() if measured else pipeline.run()


@pytest.fixture(scope="module")
def base_result(params):
    return run(params, (4, 2, 8, 2, 4, 2, 2))


@pytest.fixture(scope="module")
def doubled_result(params):
    return run(params, (8, 4, 16, 4, 8, 4, 4))


class TestScaling:
    def test_doubling_nodes_roughly_doubles_throughput(self, base_result, doubled_result):
        ratio = (
            doubled_result.metrics.measured_throughput
            / base_result.metrics.measured_throughput
        )
        assert 1.6 < ratio < 2.4

    def test_doubling_nodes_roughly_halves_latency(self, base_result, doubled_result):
        ratio = base_result.metrics.measured_latency / doubled_result.metrics.measured_latency
        assert 1.5 < ratio < 2.5

    def test_compute_time_scales_inversely_with_nodes(self, base_result, doubled_result):
        for task in ("doppler", "hard_weight", "pulse_compression"):
            ratio = (
                base_result.metrics.tasks[task].comp
                / doubled_result.metrics.tasks[task].comp
            )
            assert ratio == pytest.approx(2.0, rel=0.05)


class TestEquationVsMeasured:
    def test_equation_throughput_close_to_measured(self, base_result):
        m = base_result.metrics
        assert m.equation_throughput == pytest.approx(m.measured_throughput, rel=0.15)

    def test_equation_latency_is_upper_bound(self, base_result):
        # "the latency given in equation (2) represents an upper bound."
        m = base_result.metrics
        assert m.equation_latency >= m.measured_latency

    def test_measured_latency_within_half_of_bound(self, base_result):
        # Table 8: real latency is roughly 2/3 of the equation value.
        m = base_result.metrics
        assert m.measured_latency > 0.4 * m.equation_latency


class TestSecondaryEffects:
    def test_adding_doppler_nodes_helps_downstream_recv(self, params):
        """Table 9: 'adding nodes to one task ... has a measurable effect on
        the performance of other tasks' — successors' recv drops because
        the producer sends earlier and packs less per node."""
        # As in the paper's case 2, the Doppler task is the bottleneck
        # before the extra nodes arrive.
        before = run(params, (2, 2, 8, 2, 4, 2, 2), measured=True)
        after = run(params, (6, 2, 8, 2, 4, 2, 2), measured=True)
        assert (
            after.metrics.tasks["easy_beamform"].recv
            < before.metrics.tasks["easy_beamform"].recv
        )
        assert (
            after.metrics.measured_throughput
            >= 0.98 * before.metrics.measured_throughput
        )
        assert after.metrics.measured_latency < before.metrics.measured_latency

    def test_feeding_non_bottleneck_tasks_caps_throughput(self, params):
        """Table 10: extra nodes on pulse compression/CFAR do not raise
        throughput when the weight tasks are the bottleneck, but latency
        improves."""
        base = run(params, (4, 2, 4, 2, 4, 2, 2), measured=True)  # weights starved
        fattened = run(params, (4, 2, 4, 2, 4, 8, 8), measured=True)
        thr_gain = (
            fattened.metrics.measured_throughput / base.metrics.measured_throughput
        )
        assert thr_gain < 1.15  # essentially flat
        assert fattened.metrics.measured_latency < base.metrics.measured_latency

    def test_bottleneck_task_identified(self, params):
        result = run(params, (4, 2, 4, 2, 4, 2, 2))
        assert result.metrics.bottleneck_task in ("hard_weight", "easy_weight")


class TestBookkeeping:
    def test_all_cpis_reported(self, params, base_result):
        collector = base_result.collector
        for cpi in range(base_result.num_cpis):
            assert cpi in collector.report_done
            assert cpi in collector.input_start

    def test_steady_state_slice_behaviour(self):
        assert steady_state_slice(25) == (3, 23)
        assert steady_state_slice(5) == (1, 5)
        assert steady_state_slice(2) == (0, 2)

    def test_modeled_run_has_no_detections(self, base_result):
        assert base_result.reports == []

    def test_network_counters_positive(self, base_result):
        assert base_result.network_messages > 0
        assert base_result.network_bytes > 0

    def test_makespan_exceeds_latency(self, base_result):
        assert base_result.makespan > base_result.metrics.measured_latency

    def test_table_renders(self, base_result):
        text = base_result.metrics.table("title")
        assert "doppler" in text and "throughput" in text

    def test_modeled_azimuth_cycling(self, params):
        """Weight delay > 1 (revisit period) must not change the steady
        throughput materially — weights stay off the critical path."""
        base = run(params, (4, 2, 8, 2, 4, 2, 2), num_cpis=9)
        cycled = STAPPipeline(
            params,
            Assignment(4, 2, 8, 2, 4, 2, 2, name="az"),
            num_cpis=9,
            azimuth_cycle=3,
        ).run()
        assert cycled.metrics.measured_throughput == pytest.approx(
            base.metrics.measured_throughput, rel=0.05
        )
