"""Failure injection: what happens when ranks die or messages go missing.

The paper's system ran on real hardware where nodes fail; our simulation
must at least *diagnose* such conditions rather than hang or silently
produce wrong answers.  These tests kill ranks mid-run and assert the
engine surfaces an actionable deadlock report naming the stuck processes.
"""

import pytest

from repro.core.layout import PipelineLayout
from repro.core.task import Collector
from repro.core.tasks import TASK_CLASSES
from repro.des import Simulator
from repro.errors import DeadlockError, InterruptError
from repro.machine import afrl_paragon
from repro.mpi import World
from repro import Assignment, STAPParams


def build_world(num_cpis=5):
    params = STAPParams.tiny()
    assignment = Assignment(2, 1, 2, 1, 2, 1, 2, name="fail")
    layout = PipelineLayout(params, assignment)
    sim = Simulator()
    world = World(sim, afrl_paragon(), num_ranks=assignment.total_nodes)
    collector = Collector()
    processes = {}
    for task_name in assignment.rank_offsets():
        cls = TASK_CLASSES[task_name]
        for local_rank in range(assignment.count_of(task_name)):
            kwargs = dict(
                num_cpis=num_cpis,
                collector=collector,
                functional=False,
                weight_delay=1,
            )
            if task_name == "doppler":
                kwargs["sensor_seconds"] = 1e-4
            task = cls(layout, local_rank, **kwargs)
            world_rank = layout.world_rank(task_name, local_rank)
            processes[(task_name, local_rank)] = world.spawn(
                world_rank,
                lambda ctx, task=task: task.run(ctx),
                name=f"{task_name}[{local_rank}]",
            )
    return sim, world, collector, processes


class TestRankDeath:
    def test_killed_producer_deadlocks_consumers_with_diagnosis(self):
        sim, world, collector, processes = build_world()
        victim = processes[("doppler", 0)]

        def assassin(sim, victim):
            yield sim.timeout(0.01)
            if victim.is_alive:
                victim.interrupt(cause="node failure")

        sim.process(assassin(sim, victim), name="assassin")
        with pytest.raises((DeadlockError, InterruptError)) as excinfo:
            sim.run()
        if isinstance(excinfo.value, DeadlockError):
            # The report names blocked downstream processes.
            assert excinfo.value.waiting

    def test_killed_sink_blocks_upstream(self):
        sim, world, collector, processes = build_world()
        for local_rank in (0, 1):
            victim = processes[("cfar", local_rank)]

            def assassin(sim, victim=victim):
                yield sim.timeout(0.005)
                if victim.is_alive:
                    victim.interrupt(cause="cfar node failure")

            sim.process(assassin(sim), name=f"assassin{local_rank}")
        with pytest.raises((DeadlockError, InterruptError)):
            sim.run()

    def test_unharmed_run_completes(self):
        sim, world, collector, processes = build_world()
        sim.run()
        assert all(not p.is_alive for p in processes.values())
        assert world.outstanding_operations() == 0
        assert len(collector.report_done) == 5


class TestMessageLoss:
    def test_missing_message_is_reported_not_hung(self):
        """A consumer waiting for a message nobody sends must surface as a
        DeadlockError naming the waiter — the debugging affordance."""
        sim = Simulator()
        world = World(sim, afrl_paragon(), num_ranks=2)

        def silent_sender(ctx):
            yield ctx.elapse(0.001)  # "crashes" before sending

        def consumer(ctx):
            yield ctx.irecv(source=0, tag=42)

        world.spawn(0, silent_sender, name="sender")
        world.spawn(1, consumer, name="consumer")
        with pytest.raises(DeadlockError) as excinfo:
            sim.run()
        assert any("consumer" in w for w in excinfo.value.waiting)
