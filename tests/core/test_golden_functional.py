"""Golden end-to-end check: the functional chain's detections are frozen.

``tests/data/golden_functional_seed.json`` records, for one fixed scenario
at tiny and small scale, every detection the *seed* (pre-batching)
implementation produced over six CPIs — bin, beam, range cell, power, and
threshold, to full float precision.  The batched kernels claim bit
identity with the loops they replaced, so the current sequential reference
must reproduce this file byte for byte.  Any numeric drift in the Doppler
/ weight / beamform / pulse-compression / CFAR chain fails here first.
"""

import json
from pathlib import Path

import pytest

from repro import (
    CPIStream,
    RadarScenario,
    STAPParams,
    SequentialSTAP,
    TargetTruth,
)

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_functional_seed.json"
NUM_CPIS = 6


def golden_scenario():
    return RadarScenario(
        clutter_to_noise_db=40.0,
        targets=(
            TargetTruth(range_cell=20, normalized_doppler=0.25, angle_deg=0.0, snr_db=5.0),
            TargetTruth(range_cell=30, normalized_doppler=0.05, angle_deg=-10.0, snr_db=10.0),
        ),
        seed=11,
    )


def report_rows(report):
    return [
        [d.doppler_bin, d.beam, d.range_cell, d.power, d.threshold]
        for d in report.detections
    ]


@pytest.mark.parametrize("scale", ["tiny", "small"])
def test_detections_match_golden_seed(scale):
    golden = json.loads(GOLDEN_PATH.read_text())[scale]
    params = getattr(STAPParams, scale)()
    reports = SequentialSTAP(params).process_stream(
        CPIStream(params, golden_scenario()).take(NUM_CPIS)
    )
    assert len(reports) == len(golden) == NUM_CPIS
    for report, expected in zip(reports, golden):
        assert report.cpi_index == expected["cpi"]
        assert report_rows(report) == expected["detections"], (
            f"{scale} CPI {report.cpi_index}: detections drifted from the "
            "golden seed output"
        )


def test_golden_file_is_nontrivial():
    """Guard against an empty or truncated golden file passing vacuously."""
    golden = json.loads(GOLDEN_PATH.read_text())
    for scale in ("tiny", "small"):
        total = sum(len(entry["detections"]) for entry in golden[scale])
        assert total > 0, f"golden {scale} section contains no detections"
