"""Processor assignments: presets, rank mapping, feasibility."""

import pytest

from repro.core import (
    Assignment,
    CASE1,
    CASE2,
    CASE3,
    CASE2_PLUS_DOPPLER,
    CASE2_PLUS_DOPPLER_PC_CFAR,
    TASK_NAMES,
)
from repro.errors import AssignmentError
from repro.radar import STAPParams


class TestPaperPresets:
    def test_case_totals_match_table7(self):
        # "case 1: total number of nodes = 236", etc.
        assert CASE1.total_nodes == 236
        assert CASE2.total_nodes == 118
        assert CASE3.total_nodes == 59

    def test_case1_counts(self):
        assert CASE1.counts() == (32, 16, 112, 16, 28, 16, 16)

    def test_case2_counts(self):
        assert CASE2.counts() == (16, 8, 56, 8, 14, 8, 8)

    def test_case3_counts(self):
        assert CASE3.counts() == (8, 4, 28, 4, 7, 4, 4)

    def test_table9_variant(self):
        # "adding 4 more nodes to the Doppler filter processing task."
        assert CASE2_PLUS_DOPPLER.total_nodes == 122
        assert CASE2_PLUS_DOPPLER.doppler == 20
        assert CASE2_PLUS_DOPPLER.hard_weight == CASE2.hard_weight

    def test_table10_variant(self):
        # "added a total of 16 more nodes to the pulse compression and CFAR."
        assert CASE2_PLUS_DOPPLER_PC_CFAR.total_nodes == 138
        assert CASE2_PLUS_DOPPLER_PC_CFAR.pulse_compression == 16
        assert CASE2_PLUS_DOPPLER_PC_CFAR.cfar == 16

    def test_all_presets_valid_at_paper_scale(self):
        params = STAPParams.paper()
        for case in (CASE1, CASE2, CASE3, CASE2_PLUS_DOPPLER, CASE2_PLUS_DOPPLER_PC_CFAR):
            case.validate_for(params)


class TestRankMapping:
    def test_contiguous_offsets_in_task_order(self):
        offsets = CASE2.rank_offsets()
        expected = 0
        for task in TASK_NAMES:
            assert offsets[task] == expected
            expected += CASE2.count_of(task)

    def test_world_ranks(self):
        ranks = CASE2.world_ranks("hard_weight")
        assert ranks.start == 16 + 8
        assert len(ranks) == 56

    def test_task_of_rank_roundtrip(self):
        for task in TASK_NAMES:
            for rank in CASE3.world_ranks(task):
                assert CASE3.task_of_rank(rank) == task

    def test_rank_beyond_total_rejected(self):
        with pytest.raises(AssignmentError):
            CASE3.task_of_rank(CASE3.total_nodes)


class TestValidation:
    def test_zero_count_rejected(self):
        with pytest.raises(AssignmentError):
            Assignment(0, 1, 1, 1, 1, 1, 1)

    def test_unknown_task_lookup_rejected(self):
        with pytest.raises(AssignmentError):
            CASE1.count_of("not_a_task")

    def test_too_many_nodes_for_work_units_rejected(self):
        params = STAPParams.tiny()  # 8 hard bins x 2 segments = 16 units
        bad = Assignment(1, 1, 17, 1, 1, 1, 1)
        with pytest.raises(AssignmentError):
            bad.validate_for(params)

    def test_hard_weight_unit_limit_is_six_nhard_at_paper_scale(self):
        params = STAPParams.paper()
        Assignment(1, 1, 336, 1, 1, 1, 1).validate_for(params)
        with pytest.raises(AssignmentError):
            Assignment(1, 1, 337, 1, 1, 1, 1).validate_for(params)

    def test_with_counts_preserves_others(self):
        variant = CASE2.with_counts(name="x", cfar=10)
        assert variant.cfar == 10
        assert variant.doppler == CASE2.doppler
        assert variant.name == "x"
