"""The public verify_pipeline helper."""

import pytest

from repro import Assignment, CPIStream, RadarScenario, STAPParams, TargetTruth
from repro.core.verification import verify_pipeline


@pytest.fixture
def setup():
    params = STAPParams.tiny()
    scenario = RadarScenario(
        clutter_to_noise_db=40.0,
        targets=(TargetTruth(20, 0.25, 0.0, 5.0),),
        seed=11,
    )
    return params, scenario


class TestVerifyPipeline:
    def test_passes_for_standard_configuration(self, setup):
        params, scenario = setup
        report = verify_pipeline(
            params,
            Assignment(3, 2, 2, 2, 2, 2, 2, name="v"),
            CPIStream(params, scenario),
            num_cpis=4,
        )
        assert report.passed
        assert report.matched_cpis == 4
        assert "PASS" in report.summary()

    def test_passes_with_ablations(self, setup):
        params, scenario = setup
        report = verify_pipeline(
            params,
            Assignment(2, 1, 4, 1, 2, 1, 2, name="v2"),
            CPIStream(params, scenario),
            num_cpis=3,
            double_buffering=False,
            collect_training=False,
        )
        assert report.passed

    def test_detections_counted(self, setup):
        params, _ = setup
        loud = RadarScenario(
            clutter_to_noise_db=40.0,
            targets=(TargetTruth(20, 0.25, 0.0, 12.0),),
            seed=11,
        )
        report = verify_pipeline(
            params,
            Assignment(2, 2, 2, 2, 2, 2, 2, name="v3"),
            CPIStream(params, loud),
            num_cpis=5,
        )
        assert report.passed
        assert report.total_detections > 0
