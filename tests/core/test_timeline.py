"""Timeline rendering and utilization accounting."""

import pytest

from repro import Assignment, STAPParams, STAPPipeline
from repro.core.assignment import TASK_NAMES
from repro.core.timeline import render_timeline, utilization
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def result():
    return STAPPipeline(
        STAPParams.small(), Assignment(4, 2, 8, 2, 4, 2, 2, name="tl"), num_cpis=8
    ).run()


class TestRenderTimeline:
    def test_renders_all_tasks(self, result):
        text = render_timeline(result.collector, 3, 6, width=80)
        for task in TASK_NAMES:
            assert task in text

    def test_rows_have_requested_width(self, result):
        width = 64
        text = render_timeline(result.collector, 3, 5, width=width)
        rows = text.splitlines()[1:]
        name_width = len(rows[0]) - width
        for row in rows:
            assert len(row) == name_width + width

    def test_steady_state_shows_overlap(self, result):
        """In the same time window, at least two tasks must be computing —
        the pipelining itself."""
        text = render_timeline(result.collector, 3, 6, width=120)
        rows = [line.split()[-1] for line in text.splitlines()[1:]]
        compute_columns = [
            sum(1 for row in rows if col < len(row) and row[col] == "C")
            for col in range(120)
        ]
        assert max(compute_columns) >= 3

    def test_all_phases_present(self, result):
        text = render_timeline(result.collector, 3, 6, width=100)
        body = "".join(line.split()[-1] for line in text.splitlines()[1:])
        assert "C" in body and "r" in body and "s" in body

    def test_invalid_args_rejected(self, result):
        with pytest.raises(ConfigurationError):
            render_timeline(result.collector, 5, 5)
        with pytest.raises(ConfigurationError):
            render_timeline(result.collector, 0, 2, width=5)
        with pytest.raises(ConfigurationError):
            render_timeline(result.collector, 0, 2, tasks=("no_such_task",))


class TestUtilization:
    def test_fractions_sum_to_one(self, result):
        for task in TASK_NAMES:
            u = utilization(result.collector, task)
            assert sum(u.values()) == pytest.approx(1.0)

    def test_bottleneck_task_mostly_computes(self, result):
        u = utilization(result.collector, "hard_weight")
        assert u["comp"] > 0.5

    def test_unknown_task_rejected(self, result):
        with pytest.raises(ConfigurationError):
            utilization(result.collector, "nope")
