"""Metrics aggregation and the paper's equations."""

import pytest

from repro.core.metrics import (
    PipelineMetrics,
    TaskMetrics,
    TaskTiming,
    steady_state_slice,
)
from repro.errors import ConfigurationError


def timing(cpi, rank=0, t0=0.0, recv=0.1, comp=0.2, send=0.05):
    t1 = t0 + recv
    t2 = t1 + comp
    t3 = t2 + send
    return TaskTiming(cpi_index=cpi, rank=rank, t0=t0, t1=t1, t2=t2, t3=t3)


class TestSteadyStateSlice:
    def test_paper_run_drops_3_and_2(self):
        # "do not include the effect of the initial setup (first 3 CPIs)
        # and final iterations (last 2 CPIs)."
        assert steady_state_slice(25) == (3, 23)

    def test_short_runs_keep_most(self):
        assert steady_state_slice(4) == (1, 4)
        assert steady_state_slice(1) == (0, 1)


class TestTaskMetricsAggregate:
    def test_averages_over_ranks_then_cpis(self):
        timings = [
            timing(3, rank=0, recv=0.1),
            timing(3, rank=1, recv=0.3),  # per-CPI mean: 0.2
            timing(4, rank=0, recv=0.4),
            timing(4, rank=1, recv=0.4),  # per-CPI mean: 0.4
        ]
        metrics = TaskMetrics.aggregate("t", 2, timings, num_cpis=25)
        # Only CPIs in the steady window would count; 3 and 4 both are.
        assert metrics.recv == pytest.approx(0.3)

    def test_warmup_cpis_excluded(self):
        timings = [timing(0, recv=9.9), timing(3, recv=0.1), timing(4, recv=0.1)]
        metrics = TaskMetrics.aggregate("t", 1, timings, num_cpis=25)
        assert metrics.recv == pytest.approx(0.1)

    def test_empty_steady_state_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskMetrics.aggregate("t", 1, [timing(0)], num_cpis=25)

    def test_total_is_sum_of_phases(self):
        metrics = TaskMetrics("t", 4, recv=0.1, comp=0.2, send=0.05)
        assert metrics.total == pytest.approx(0.35)

    def test_row_renders(self):
        metrics = TaskMetrics("doppler", 16, 0.01, 0.17, 0.06)
        row = metrics.row()
        assert "doppler" in row and "16" in row


def make_pipeline_metrics(totals):
    tasks = {}
    for name, (recv, comp, send) in totals.items():
        tasks[name] = TaskMetrics(name, 1, recv, comp, send)
    return PipelineMetrics(
        tasks=tasks, measured_throughput=1.0, measured_latency=1.0
    )


FULL = {
    "doppler": (0.01, 0.20, 0.05),
    "easy_weight": (0.05, 0.30, 0.0),
    "hard_weight": (0.05, 0.40, 0.0),
    "easy_beamform": (0.10, 0.10, 0.01),
    "hard_beamform": (0.10, 0.08, 0.01),
    "pulse_compression": (0.05, 0.15, 0.01),
    "cfar": (0.10, 0.05, 0.0),
}


class TestEquations:
    def test_equation_1_throughput(self):
        metrics = make_pipeline_metrics(FULL)
        slowest = max(sum(v) for v in FULL.values())  # hard_weight: 0.45
        assert metrics.equation_throughput == pytest.approx(1.0 / slowest)

    def test_equation_2_latency_skips_weight_tasks(self):
        # latency = T0 + max(T3, T4) + T5 + T6 — equations (2).
        metrics = make_pipeline_metrics(FULL)
        t = {k: sum(v) for k, v in FULL.items()}
        expected = (
            t["doppler"]
            + max(t["easy_beamform"], t["hard_beamform"])
            + t["pulse_compression"]
            + t["cfar"]
        )
        assert metrics.equation_latency == pytest.approx(expected)
        # Making the weight tasks slower must NOT change the latency bound.
        slower = dict(FULL)
        slower["hard_weight"] = (0.05, 5.0, 0.0)
        assert make_pipeline_metrics(slower).equation_latency == pytest.approx(
            expected
        )

    def test_bottleneck_uses_work_not_total(self):
        # A task stuffed with recv wait is not the bottleneck; the task
        # doing the most comp+send is.
        totals = dict(FULL)
        totals["cfar"] = (5.0, 0.05, 0.0)  # huge waiting, tiny work
        metrics = make_pipeline_metrics(totals)
        assert metrics.bottleneck_task == "hard_weight"
