"""Determinism regression against golden outputs captured from the seed.

The simulation fast path (indexed MPI matching, callback-driven network
transfers, pooled timeouts, plan caching) is required to change *nothing*
about the simulated behaviour: not one timestamp, not one detection.
``tests/data/golden_fastpath.json`` was captured from the implementation
*before* any of those optimizations landed; these tests replay the same
two configurations and compare against it with ``repr``-exact floats.

If an intentional semantic change ever invalidates the golden file,
recapture it with the snippet in the JSON's ``_meta`` notes — but treat
any diff here as a bug until proven otherwise: the entire value of the
fast path rests on bit-identical results.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import (
    Assignment,
    CPIStream,
    RadarScenario,
    STAPParams,
    STAPPipeline,
    TargetTruth,
)
from repro.core.assignment import CASE3

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_fastpath.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def _timing_rows(result) -> list[list]:
    """Every (task, cpi, rank) timing as repr-exact strings, sorted."""
    rows = []
    for task, timings in sorted(result.collector.timings.items()):
        for t in timings:
            rows.append(
                [task, t.cpi_index, t.rank, repr(t.t0), repr(t.t1), repr(t.t2), repr(t.t3)]
            )
    rows.sort()
    return rows


def test_functional_run_bit_identical(golden):
    """Tiny functional run: detections, reports and timings match the seed."""
    scenario = RadarScenario(
        clutter_to_noise_db=40.0,
        targets=(
            TargetTruth(
                range_cell=20, normalized_doppler=0.25, angle_deg=0.0, snr_db=5.0
            ),
            TargetTruth(
                range_cell=30, normalized_doppler=0.05, angle_deg=-10.0, snr_db=10.0
            ),
        ),
        seed=11,
    )
    params = STAPParams.tiny()
    result = STAPPipeline(
        params,
        Assignment(3, 2, 2, 2, 2, 2, 2, name="golden"),
        mode="functional",
        stream=CPIStream(params, scenario),
        num_cpis=5,
    ).run()

    expected = golden["functional"]
    assert repr(result.makespan) == expected["makespan"]
    got_reports = [
        {
            "cpi": r.cpi_index,
            "completed_at": repr(r.completed_at),
            "detections": [
                list(map(repr, d)) if isinstance(d, tuple) else repr(d)
                for d in r.detections
            ],
        }
        for r in result.reports
    ]
    assert got_reports == expected["reports"]
    assert _timing_rows(result) == [list(row) for row in expected["timings"]]


def test_modeled_case3_bit_identical(golden):
    """Paper-scale modeled run (case 3, 5 CPIs): every timestamp matches."""
    result = STAPPipeline(STAPParams.paper(), CASE3, num_cpis=5).run()

    expected = golden["modeled_case3"]
    assert repr(result.makespan) == expected["makespan"]
    assert result.network_messages == expected["network_messages"]
    assert result.network_bytes == expected["network_bytes"]
    assert _timing_rows(result) == [list(row) for row in expected["timings"]]
