"""Unit tests of the Figure 10 task loop, using a minimal stub pipeline.

Two single-rank tasks connected by one edge: a producer (doppler slot) and
a consumer (cfar slot).  This isolates the framework's timing bookkeeping,
tag plumbing and double-buffering from the STAP numerics.
"""

import pytest

from repro import Assignment, STAPParams, STAPPipeline
from repro.core.layout import PipelineLayout
from repro.core.metrics import TaskTiming


@pytest.fixture(scope="module")
def small_run():
    return STAPPipeline(
        STAPParams.tiny(), Assignment(2, 1, 2, 1, 2, 1, 2, name="fw"), num_cpis=6
    ).run()


class TestTimingBookkeeping:
    def test_every_rank_records_every_cpi(self, small_run):
        collector = small_run.collector
        assignment = small_run.assignment
        for task in assignment.rank_offsets():
            timings = collector.timings[task]
            expected = assignment.count_of(task) * small_run.num_cpis
            assert len(timings) == expected

    def test_timestamps_are_ordered(self, small_run):
        for timings in small_run.collector.timings.values():
            for t in timings:
                assert t.t0 <= t.t1 <= t.t2 <= t.t3

    def test_iterations_of_one_rank_do_not_overlap(self, small_run):
        for task, timings in small_run.collector.timings.items():
            by_rank = {}
            for t in timings:
                by_rank.setdefault(t.rank, []).append(t)
            for rank_timings in by_rank.values():
                rank_timings.sort(key=lambda t: t.cpi_index)
                for a, b in zip(rank_timings, rank_timings[1:]):
                    assert b.t0 >= a.t3

    def test_phases_sum_to_total(self):
        t = TaskTiming(cpi_index=0, rank=0, t0=1.0, t1=2.5, t2=4.0, t3=4.25)
        assert t.recv + t.comp + t.send == pytest.approx(t.total)
        assert t.recv == 1.5 and t.comp == 1.5 and t.send == 0.25


class TestCausality:
    def test_consumer_never_finishes_before_producer_starts(self, small_run):
        """For each CPI, CFAR's compute end must follow Doppler's start."""
        collector = small_run.collector
        dop = {t.cpi_index: t for t in collector.timings["doppler"] if t.rank == 0}
        cfar = {t.cpi_index: t for t in collector.timings["cfar"] if t.rank == 0}
        for cpi in dop:
            assert cfar[cpi].t2 > dop[cpi].t0

    def test_pipeline_depth_bounded(self, small_run):
        """Double buffering bounds how far Doppler runs ahead of CFAR:
        its iteration start cannot lead the report of the same CPI by more
        than a handful of pipeline stages."""
        collector = small_run.collector
        dop = {t.cpi_index: t for t in collector.timings["doppler"] if t.rank == 0}
        for cpi, report_time in collector.report_done.items():
            lead_iterations = sum(
                1 for j, t in dop.items() if j > cpi and t.t0 < report_time
            )
            assert lead_iterations <= 8

    def test_reports_strictly_ordered(self, small_run):
        done = [small_run.collector.report_done[i] for i in range(small_run.num_cpis)]
        assert all(b > a for a, b in zip(done, done[1:]))


class TestLayoutMemory:
    def test_paper_cases_fit_64mib_nodes(self):
        from repro import CASE1, CASE2, CASE3

        params = STAPParams.paper()
        for case in (CASE1, CASE2, CASE3):
            PipelineLayout(params, case).validate_memory(64 * 2**20)

    def test_tiny_memory_budget_rejected(self):
        from repro.errors import ConfigurationError

        params = STAPParams.paper()
        from repro import CASE3

        with pytest.raises(ConfigurationError):
            PipelineLayout(params, CASE3).validate_memory(1 * 2**20)

    def test_peak_bytes_positive_for_all_ranks(self):
        params = STAPParams.tiny()
        assignment = Assignment(2, 1, 3, 1, 2, 1, 2, name="mem")
        layout = PipelineLayout(params, assignment)
        for task in assignment.rank_offsets():
            for rank in range(assignment.count_of(task)):
                assert layout.peak_buffer_bytes(task, rank) > 0
