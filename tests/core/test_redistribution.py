"""Redistribution plans: coverage, disjointness, byte accounting."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.layout import PipelineLayout
from repro.core.redistribution import (
    edge_tag,
    easy_training_cells,
    hard_training_cells,
    TAG_CODES,
)
from repro.radar import STAPParams
from repro.scheduling.model import _edge_volumes


def layout_for(params, counts):
    return PipelineLayout(params, Assignment(*counts, name="test"))


@pytest.fixture
def params():
    return STAPParams.tiny()


@pytest.fixture
def layout(params):
    # Deliberately mismatched partner sizes to exercise the general case,
    # including hard-weight ranks > hard bins (unit partitioning).
    return layout_for(params, (3, 2, 10, 2, 3, 2, 3))


class TestTags:
    def test_edges_have_distinct_codes(self):
        assert len(set(TAG_CODES.values())) == len(TAG_CODES)

    def test_tag_encodes_cpi(self):
        t0 = edge_tag("pc_to_cfar", 0)
        t1 = edge_tag("pc_to_cfar", 1)
        assert t1 - t0 == 16
        assert edge_tag("dop_to_easy_bf", 5) != edge_tag("dop_to_hard_bf", 5)


class TestTrainingCells:
    def test_easy_cells_match_reference_selection(self, params):
        from repro.stap.easy_weights import select_range_samples

        assert np.array_equal(
            easy_training_cells(params),
            select_range_samples(params.num_ranges, params.easy_train_per_cpi),
        )

    def test_hard_cells_stay_in_their_segments(self, params):
        for seg, cells in zip(params.segment_slices, hard_training_cells(params)):
            assert cells.min() >= seg.start
            assert cells.max() < seg.stop


class TestDopToWeightPlans:
    def test_easy_rows_cover_all_training_cells_once(self, params, layout):
        plan = layout.plan("dop_to_easy_weight")
        for dst in range(plan.dst_size):
            rows = np.concatenate(
                [m.segments[0].row_positions for m in plan.recvs_of(dst)]
            )
            assert np.array_equal(np.sort(rows), np.arange(params.easy_train_per_cpi))

    def test_easy_k_indices_owned_by_sender(self, params, layout):
        plan = layout.plan("dop_to_easy_weight")
        for message in plan.messages:
            lo, hi = layout.k_partition.bounds(message.src)
            k_idx = message.segments[0].k_indices
            assert np.all((k_idx >= lo) & (k_idx < hi))

    def test_hard_units_fully_supplied(self, params, layout):
        """Every (segment, bin) unit must receive every selected training
        row of its segment, across all sources."""
        plan = layout.plan("dop_to_hard_weight")
        unit_partition = layout.hard_weight_units
        per_segment = hard_training_cells(params)
        for dst in range(plan.dst_size):
            needed = unit_partition.segment_bins_of(dst)
            got: dict[tuple[int, int], list] = {}
            for message in plan.recvs_of(dst):
                for seg in message.segments:
                    for b in seg.bin_ids:
                        got.setdefault((seg.segment, int(b)), []).extend(
                            seg.row_positions.tolist()
                        )
            for seg_idx, bins in needed.items():
                expected_rows = len(per_segment[seg_idx])
                for b in bins:
                    rows = sorted(got[(seg_idx, int(b))])
                    assert rows == list(range(expected_rows))

    def test_byte_totals_match_closed_form(self, params, layout):
        volumes = _edge_volumes(params)
        for edge in ("dop_to_easy_weight", "dop_to_hard_weight"):
            assert layout.plan(edge).total_bytes == volumes[edge]


class TestDopToBfPlans:
    @pytest.mark.parametrize("edge", ["dop_to_easy_bf", "dop_to_hard_bf"])
    def test_k_slices_tile_the_range_axis(self, params, layout, edge):
        plan = layout.plan(edge)
        for dst in range(plan.dst_size):
            msgs = plan.recvs_of(dst)
            covered = sorted((m.k_start, m.k_stop) for m in msgs)
            cursor = 0
            for lo, hi in covered:
                assert lo == cursor
                cursor = hi
            assert cursor == params.num_ranges

    @pytest.mark.parametrize("edge", ["dop_to_easy_bf", "dop_to_hard_bf"])
    def test_byte_totals_match_closed_form(self, params, layout, edge):
        assert layout.plan(edge).total_bytes == _edge_volumes(params)[edge]

    def test_reorganization_flags(self, layout):
        plan = layout.plan("dop_to_easy_bf")
        assert plan.pack_strided and plan.unpack_strided


class TestAlignedBinPlans:
    @pytest.mark.parametrize(
        "edge,dst_partition",
        [
            ("easy_weight_to_bf", "easy_bf_bins"),
            ("easy_bf_to_pc", "pc_bins"),
            ("hard_bf_to_pc", "pc_bins"),
            ("pc_to_cfar", "cfar_bins"),
        ],
    )
    def test_each_dst_position_filled_exactly_once(self, layout, edge, dst_partition):
        plan = layout.plan(edge)
        partition = getattr(layout, dst_partition)
        expected = {
            "easy_weight_to_bf": lambda d: partition.size_of(d),
            "easy_bf_to_pc": None,
            "hard_bf_to_pc": None,
            "pc_to_cfar": lambda d: partition.size_of(d),
        }
        for dst in range(plan.dst_size):
            positions = np.concatenate(
                [m.dst_pos for m in plan.recvs_of(dst)]
                or [np.empty(0, dtype=int)]
            )
            assert len(positions) == len(set(positions.tolist()))  # disjoint
            if edge in ("easy_weight_to_bf", "pc_to_cfar"):
                assert np.array_equal(np.sort(positions), np.arange(partition.size_of(dst)))

    def test_pc_receives_every_bin_from_exactly_one_bf(self, params, layout):
        easy = layout.plan("easy_bf_to_pc")
        hard = layout.plan("hard_bf_to_pc")
        for dst in range(layout.pc_bins.parts):
            ids = np.concatenate(
                [m.ids for m in easy.recvs_of(dst)]
                + [m.ids for m in hard.recvs_of(dst)]
            )
            assert np.array_equal(np.sort(ids), layout.pc_bins.ids_of(dst))

    def test_no_reorganization_on_aligned_edges(self, layout):
        for edge in ("easy_weight_to_bf", "easy_bf_to_pc", "pc_to_cfar"):
            plan = layout.plan(edge)
            assert not plan.pack_strided and not plan.unpack_strided

    @pytest.mark.parametrize(
        "edge",
        ["easy_weight_to_bf", "hard_weight_to_bf", "easy_bf_to_pc", "hard_bf_to_pc", "pc_to_cfar"],
    )
    def test_byte_totals_match_closed_form(self, params, layout, edge):
        assert layout.plan(edge).total_bytes == _edge_volumes(params)[edge]


class TestHardWeightToBf:
    def test_every_unit_delivered_to_its_bin_owner(self, params, layout):
        plan = layout.plan("hard_weight_to_bf")
        unit_partition = layout.hard_weight_units
        delivered: dict[int, set] = {d: set() for d in range(plan.dst_size)}
        for message in plan.messages:
            for seg, pos in zip(message.segments, message.dst_bin_pos):
                key = (int(seg), int(pos))
                assert key not in delivered[message.dst]
                delivered[message.dst].add(key)
        for dst in range(plan.dst_size):
            nbins = layout.hard_bf_bins.size_of(dst)
            assert len(delivered[dst]) == params.num_segments * nbins

    def test_src_positions_within_local_units(self, layout):
        plan = layout.plan("hard_weight_to_bf")
        for message in plan.messages:
            local_units = layout.hard_weight_units.size_of(message.src)
            assert message.src_pos.max() < local_units


class TestPerRankAccounting:
    def test_sends_and_recvs_are_consistent_views(self, layout):
        for edge_name in TAG_CODES:
            plan = layout.plan(edge_name)
            from_sends = sorted(
                (m.src, m.dst) for s in range(plan.src_size) for m in plan.sends_of(s)
            )
            from_recvs = sorted(
                (m.src, m.dst) for d in range(plan.dst_size) for m in plan.recvs_of(d)
            )
            assert from_sends == from_recvs

    def test_send_recv_byte_sums_agree(self, layout):
        for edge_name in TAG_CODES:
            plan = layout.plan(edge_name)
            sent = sum(plan.send_bytes_of(s) for s in range(plan.src_size))
            recvd = sum(plan.recv_bytes_of(d) for d in range(plan.dst_size))
            assert sent == recvd == plan.total_bytes


class TestTagSpaceGuard:
    def test_current_constants_are_collision_free(self):
        from repro.core.redistribution import TAG_STRIDE, validate_tag_space

        validate_tag_space()  # import-time invariant, re-checked explicitly
        assert TAG_STRIDE > max(TAG_CODES.values())

    def test_stride_not_exceeding_max_code_raises(self):
        from repro.core.redistribution import validate_tag_space
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="TAG_STRIDE"):
            validate_tag_space(stride=8, codes={"edge_a": 3, "edge_b": 8})
        with pytest.raises(ConfigurationError, match="collide"):
            validate_tag_space(stride=5, codes={"edge_a": 7})
        # Strictly greater is required, equal is a collision.
        validate_tag_space(stride=9, codes={"edge_a": 3, "edge_b": 8})

    def test_edge_tags_never_collide_across_cpis(self):
        from repro.core.redistribution import TAG_STRIDE

        seen = {}
        for cpi in range(3):
            for edge in TAG_CODES:
                tag = edge_tag(edge, cpi)
                assert tag not in seen, (edge, cpi, seen[tag])
                seen[tag] = (edge, cpi)
        assert len(seen) == 3 * len(TAG_CODES)
        assert TAG_STRIDE > max(TAG_CODES.values())
