"""The functional-mode raw-cube cache stays within its depth bound."""

import pytest

from repro import Assignment, CPIStream, STAPParams, STAPPipeline
from repro.core import pipeline as pipeline_mod


def make_pipeline(tiny_scenario, num_cpis=8):
    params = STAPParams.tiny()
    return STAPPipeline(
        params,
        Assignment(3, 2, 2, 2, 2, 2, 2, name="cube-cache"),
        mode="functional",
        stream=CPIStream(params, tiny_scenario),
        num_cpis=num_cpis,
    )


class TestCubeCacheBound:
    def test_out_of_order_requests_stay_bounded(self, tiny_scenario):
        """An older CPI arriving after newer ones must not grow the cache:
        the windowed eviction alone would keep both the old index and the
        full newer window."""
        pipeline = make_pipeline(tiny_scenario, num_cpis=25)
        depth = pipeline_mod._CUBE_CACHE_DEPTH
        order = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 2, 11, 0, 12, 5, 13]
        for index in order:
            pipeline._cube(index)
            assert len(pipeline._cube_cache) <= depth, (
                f"cube cache grew to {len(pipeline._cube_cache)} entries "
                f"after requesting CPI {index} (bound {depth})"
            )

    def test_bound_holds_across_a_full_run(self, tiny_scenario, monkeypatch):
        """Every access during a real functional run observes the bound."""
        pipeline = make_pipeline(tiny_scenario, num_cpis=8)
        depth = pipeline_mod._CUBE_CACHE_DEPTH
        sizes = []
        original = STAPPipeline._cube

        def watched(self, cpi_index):
            cube = original(self, cpi_index)
            sizes.append(len(self._cube_cache))
            return cube

        monkeypatch.setattr(STAPPipeline, "_cube", watched)
        result = pipeline.run()
        assert len(result.reports) == 8
        assert sizes, "functional run never touched the cube cache"
        assert max(sizes) <= depth

    def test_cache_returns_correct_cubes_after_eviction(self, tiny_scenario):
        """Re-fetching an evicted CPI regenerates the identical cube."""
        import numpy as np

        pipeline = make_pipeline(tiny_scenario, num_cpis=25)
        depth = pipeline_mod._CUBE_CACHE_DEPTH
        first = pipeline._cube(0).data.copy()
        for index in range(1, depth + 3):  # push CPI 0 out of the window
            pipeline._cube(index)
        assert 0 not in pipeline._cube_cache
        np.testing.assert_array_equal(pipeline._cube(0).data, first)
