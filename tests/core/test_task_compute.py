"""White-box tests of each task's ``compute`` in isolation.

The functional pipeline tests prove end-to-end equality with the reference;
these localize failures by driving one task's compute() with hand-built
inputs and checking its outputs against the stap-layer kernels directly.
"""

import numpy as np
import pytest

from repro import Assignment, CPIStream, RadarScenario, STAPParams
from repro.core.layout import PipelineLayout
from repro.core.task import Collector
from repro.core.tasks import (
    CfarTask,
    DopplerTask,
    EasyBeamformTask,
    PulseCompressionTask,
)
from repro.stap.cfar import cfar_detect
from repro.stap.doppler import doppler_filter
from repro.stap.easy_weights import extract_easy_training
from repro.stap.lsq import quiescent_weights
from repro.stap.pulse_compression import pulse_compress_block, replica_response
from repro.stap.reference import default_steering


@pytest.fixture(scope="module")
def params():
    return STAPParams.tiny()


@pytest.fixture(scope="module")
def layout(params):
    return PipelineLayout(params, Assignment(2, 1, 2, 1, 2, 1, 2, name="unit"))


@pytest.fixture(scope="module")
def cube(params):
    return CPIStream(params, RadarScenario.standard(seed=3).with_targets([])).cube(0)


def make_task(cls, layout, local_rank, **kwargs):
    return cls(
        layout,
        local_rank,
        num_cpis=3,
        collector=Collector(),
        functional=True,
        weight_delay=1,
        **kwargs,
    )


class TestDopplerTaskCompute:
    def test_bf_payloads_match_full_doppler_filter(self, params, layout, cube):
        full = doppler_filter(cube)
        for rank in range(2):
            task = make_task(DopplerTask, layout, rank, source=lambda i: cube)
            sends = dict(task.compute(0, {}))
            k_lo, k_hi = layout.k_partition.bounds(rank)
            for message, payload in sends["dop_to_easy_bf"]:
                bins = layout.easy_bf_bins.ids_of(message.dst)
                expected = full[bins][:, : params.num_channels, k_lo:k_hi]
                assert np.allclose(payload, expected)
            for message, payload in sends["dop_to_hard_bf"]:
                bins = layout.hard_bf_bins.ids_of(message.dst)
                assert np.allclose(payload, full[bins][:, :, k_lo:k_hi])

    def test_training_payloads_match_extractor(self, params, layout, cube):
        """Union of the per-rank easy-training payloads == the reference
        extractor's block (the conjugation included)."""
        full_training = extract_easy_training(doppler_filter(cube), params)
        plan = layout.plan("dop_to_easy_weight")
        assembled = np.zeros_like(full_training)
        for rank in range(2):
            task = make_task(DopplerTask, layout, rank, source=lambda i: cube)
            sends = dict(task.compute(0, {}))
            for message, payload in sends.get("dop_to_easy_weight", []):
                (segment,) = message.segments
                assembled[:, segment.row_positions, :] = payload[segment.segment]
        assert np.allclose(assembled, full_training)


class TestEasyBeamformCompute:
    def test_quiescent_first_iteration(self, params, layout, cube):
        steering = default_steering(params)
        task = make_task(EasyBeamformTask, layout, 0, steering=steering)
        full = doppler_filter(cube)
        received = {"dop_to_easy_bf": {}}
        for message in layout.plan("dop_to_easy_bf").recvs_of(0):
            bins = layout.easy_bf_bins.ids_of(0)
            received["dop_to_easy_bf"][message.src] = full[bins][
                :, : params.num_channels, message.k_start : message.k_stop
            ]
        sends = dict(task.compute(0, received))
        # Expected: quiescent beamforming of the full-K assembled block.
        bins = layout.easy_bf_bins.ids_of(0)
        dop = full[bins][:, : params.num_channels, :]
        w = quiescent_weights(steering)
        expected = np.einsum("jm,njk->nmk", np.conj(w), dop)
        for message, payload in sends["easy_bf_to_pc"]:
            assert np.allclose(payload, expected[message.src_pos])


class TestPulseCompressionCompute:
    def test_power_matches_block_kernel(self, params, layout):
        rng = np.random.default_rng(0)
        task = make_task(PulseCompressionTask, layout, 0)
        nbins = len(task.bins)
        block = rng.standard_normal(
            (nbins, params.num_beams, params.num_ranges)
        ) + 1j * rng.standard_normal((nbins, params.num_beams, params.num_ranges))
        # Feed the block through the edge descriptors.
        received = {"easy_bf_to_pc": {}, "hard_bf_to_pc": {}}
        for edge, msgs in (
            ("easy_bf_to_pc", task._easy_msgs),
            ("hard_bf_to_pc", task._hard_msgs),
        ):
            for src, message in msgs.items():
                received[edge][src] = block[message.dst_pos]
        sends = dict(task.compute(0, received))
        expected = pulse_compress_block(block, params, replica_response(params))
        for message, payload in sends["pc_to_cfar"]:
            assert np.allclose(payload, expected[message.src_pos])


class TestCfarCompute:
    def test_detections_match_kernel_with_global_bins(self, params, layout):
        rng = np.random.default_rng(1)
        task = make_task(CfarTask, layout, 1)  # second rank: offset bins
        nbins = len(task.bins)
        power = rng.exponential(
            1.0, (nbins, params.num_beams, params.num_ranges)
        ).astype(params.real_dtype)
        power[0, 0, 25] = 1e7
        received = {"pc_to_cfar": {}}
        for src, message in task._pc_msgs.items():
            received["pc_to_cfar"][src] = power[message.dst_pos]
        task.compute(0, received)
        expected = cfar_detect(power, params, bin_ids=task.bins)
        assert task._latest_detections == expected
        # Doppler bins are globally numbered (rank 1 owns the upper half).
        assert min(d.doppler_bin for d in task._latest_detections) >= task.bins[0]
