"""Design-choice ablations: double buffering, data collection, replication.

These verify that the machinery behind DESIGN.md's ablation benchmarks
behaves correctly at test scale — and that disabling an optimization never
changes the *computed results*, only the timing.
"""

import pytest

from repro import (
    Assignment,
    CPIStream,
    RadarScenario,
    ReplicatedSTAPPipeline,
    STAPParams,
    STAPPipeline,
    SequentialSTAP,
    TargetTruth,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def params():
    return STAPParams.small()


@pytest.fixture(scope="module")
def assignment():
    return Assignment(4, 2, 8, 2, 4, 2, 2, name="ablate")


class TestDoubleBufferingAblation:
    def test_synchronous_mode_is_not_faster(self, params, assignment):
        buffered = STAPPipeline(params, assignment, num_cpis=10).run()
        synchronous = STAPPipeline(
            params, assignment, num_cpis=10, double_buffering=False
        ).run()
        assert (
            synchronous.metrics.measured_throughput
            <= buffered.metrics.measured_throughput * 1.001
        )

    def test_functional_results_identical(self):
        tiny = STAPParams.tiny()
        scenario = RadarScenario(
            clutter_to_noise_db=40.0,
            targets=(TargetTruth(20, 0.25, 0.0, 5.0),),
            seed=11,
        )
        reference = SequentialSTAP(tiny).process_stream(
            CPIStream(tiny, scenario).take(4)
        )
        result = STAPPipeline(
            tiny,
            Assignment(3, 2, 2, 2, 2, 2, 2, name="sync"),
            mode="functional",
            stream=CPIStream(tiny, scenario),
            num_cpis=4,
            double_buffering=False,
        ).run()
        for a, b in zip(reference, result.reports):
            assert a.same_detections(b)


class TestDataCollectionAblation:
    def test_uncollected_training_moves_more_bytes(self, params, assignment):
        collected = STAPPipeline(params, assignment, num_cpis=8).run()
        dumped = STAPPipeline(
            params, assignment, num_cpis=8, collect_training=False
        ).run()
        assert dumped.network_bytes > collected.network_bytes

    def test_uncollected_training_shifts_costs(self, params, assignment):
        """The tradeoff: no collection means more wire bytes and a strided
        receive-side sift, but a cheap contiguous pack.  At the test scale
        (small cube, few nodes) the extra bytes dominate."""
        collected = STAPPipeline(params, assignment, num_cpis=8).run()
        dumped = STAPPipeline(
            params, assignment, num_cpis=8, collect_training=False
        ).run()
        assert (
            dumped.metrics.measured_throughput
            < collected.metrics.measured_throughput
        )

    def test_functional_results_identical(self):
        tiny = STAPParams.tiny()
        scenario = RadarScenario(
            clutter_to_noise_db=40.0,
            targets=(TargetTruth(20, 0.25, 0.0, 5.0),),
            seed=11,
        )
        reference = SequentialSTAP(tiny).process_stream(
            CPIStream(tiny, scenario).take(4)
        )
        result = STAPPipeline(
            tiny,
            Assignment(3, 2, 2, 2, 2, 2, 2, name="dump"),
            mode="functional",
            stream=CPIStream(tiny, scenario),
            num_cpis=4,
            collect_training=False,
        ).run()
        for a, b in zip(reference, result.reports):
            assert a.same_detections(b)


class TestReplication:
    def test_aggregate_throughput_scales(self, params, assignment):
        single = ReplicatedSTAPPipeline(params, assignment, 1, num_cpis=12).run()
        double = ReplicatedSTAPPipeline(params, assignment, 2, num_cpis=24).run()
        ratio = double.aggregate_throughput / single.aggregate_throughput
        assert ratio == pytest.approx(2.0, rel=0.25)

    def test_latency_unchanged_by_replication(self, params, assignment):
        single = ReplicatedSTAPPipeline(
            params, assignment, 1, num_cpis=12
        ).run_measured()
        double = ReplicatedSTAPPipeline(
            params, assignment, 2, num_cpis=24
        ).run_measured()
        assert double.latency == pytest.approx(single.latency, rel=0.1)

    def test_per_replica_metrics_available(self, params, assignment):
        result = ReplicatedSTAPPipeline(params, assignment, 2, num_cpis=16).run()
        assert len(result.per_replica) == 2
        for metrics in result.per_replica:
            assert metrics.measured_throughput > 0

    def test_node_budget_enforced(self, params, assignment):
        # 2 x 24 = 48 nodes cannot fit a 25-node machine.
        from repro import ruggedized_paragon
        from repro.errors import MachineError

        with pytest.raises(MachineError):
            ReplicatedSTAPPipeline(
                params, assignment, 2, machine=ruggedized_paragon(), num_cpis=8
            )

    def test_invalid_args_rejected(self, params, assignment):
        with pytest.raises(ConfigurationError):
            ReplicatedSTAPPipeline(params, assignment, 0, num_cpis=8)
        with pytest.raises(ConfigurationError):
            ReplicatedSTAPPipeline(params, assignment, 3, num_cpis=8)

    def test_summary_renders(self, params, assignment):
        result = ReplicatedSTAPPipeline(params, assignment, 1, num_cpis=8).run()
        assert "pipelines" in result.summary()
        assert result.total_nodes == assignment.total_nodes
