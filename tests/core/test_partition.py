"""Block and unit partitions."""

import numpy as np
import pytest

from repro.core.partition import (
    BlockPartition,
    HardUnitPartition,
    block_of,
    block_ranges,
)
from repro.errors import ConfigurationError


class TestBlockRanges:
    def test_even_split(self):
        assert block_ranges(12, 3) == [(0, 4), (4, 8), (8, 12)]

    def test_remainder_spread_over_leading_blocks(self):
        ranges = block_ranges(10, 3)
        sizes = [hi - lo for lo, hi in ranges]
        assert sizes == [4, 3, 3]

    def test_blocks_cover_and_are_disjoint(self):
        for total, parts in [(7, 2), (100, 7), (5, 5), (3, 4)]:
            ranges = block_ranges(total, parts)
            covered = [i for lo, hi in ranges for i in range(lo, hi)]
            assert covered == list(range(total))

    def test_more_parts_than_items_gives_empty_blocks(self):
        ranges = block_ranges(2, 4)
        sizes = [hi - lo for lo, hi in ranges]
        assert sizes == [1, 1, 0, 0]

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            block_ranges(5, 0)
        with pytest.raises(ConfigurationError):
            block_ranges(-1, 2)


class TestBlockOf:
    def test_inverse_of_block_ranges(self):
        for total, parts in [(12, 3), (10, 3), (100, 7), (5, 5)]:
            ranges = block_ranges(total, parts)
            for part, (lo, hi) in enumerate(ranges):
                for i in range(lo, hi):
                    assert block_of(total, parts, i) == part

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            block_of(10, 2, 10)


class TestBlockPartition:
    def test_of_range(self):
        p = BlockPartition.of_range(10, 3)
        assert np.array_equal(p.ids_of(0), [0, 1, 2, 3])
        assert p.size_of(2) == 3

    def test_of_ids_noncontiguous(self):
        hard_bins = [0, 1, 2, 13, 14, 15]
        p = BlockPartition.of_ids(hard_bins, 2)
        assert np.array_equal(p.ids_of(0), [0, 1, 2])
        assert np.array_equal(p.ids_of(1), [13, 14, 15])

    def test_intersect(self):
        p = BlockPartition.of_range(20, 4)
        inter = p.intersect(1, [4, 5, 9, 10])
        assert np.array_equal(inter, [5, 9])

    def test_local_positions(self):
        p = BlockPartition.of_ids([3, 7, 11, 15], 2)
        assert np.array_equal(p.local_positions(1, [15, 11]), [1, 0])

    def test_local_positions_foreign_id_rejected(self):
        p = BlockPartition.of_range(10, 2)
        with pytest.raises(ConfigurationError):
            p.local_positions(0, [9])

    def test_owner_of_position(self):
        p = BlockPartition.of_range(10, 3)
        assert p.owner_of_position(0) == 0
        assert p.owner_of_position(9) == 2

    def test_too_many_parts_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockPartition.of_range(3, 4)


class TestHardUnitPartition:
    def make(self, bins=8, segments=3, parts=5):
        return HardUnitPartition(
            bin_ids=tuple(range(bins)), num_segments=segments, parts=parts
        )

    def test_units_cover_all(self):
        p = self.make()
        all_units = np.concatenate([p.units_of(i) for i in range(p.parts)])
        assert np.array_equal(all_units, np.arange(p.num_units))

    def test_decompose_bin_major(self):
        p = self.make(segments=3)
        bin_pos, segs = p.decompose([0, 1, 2, 3])
        assert np.array_equal(bin_pos, [0, 0, 0, 1])
        assert np.array_equal(segs, [0, 1, 2, 0])

    def test_bins_of_units(self):
        p = HardUnitPartition(bin_ids=(10, 20, 30), num_segments=2, parts=2)
        assert np.array_equal(p.bins_of_units([0, 1, 2, 5]), [10, 10, 20, 30])

    def test_segment_bins_of_cover_everything(self):
        p = self.make(bins=4, segments=3, parts=5)
        seen = set()
        for part in range(p.parts):
            for seg, bins in p.segment_bins_of(part).items():
                for b in bins:
                    key = (seg, int(b))
                    assert key not in seen  # disjoint
                    seen.add(key)
        assert len(seen) == p.num_units  # complete

    def test_more_parts_than_units_rejected(self):
        with pytest.raises(ConfigurationError):
            HardUnitPartition(bin_ids=(0, 1), num_segments=2, parts=5)

    def test_paper_case1_feasible(self):
        # 112 nodes on 6 x 56 = 336 units.
        p = HardUnitPartition(bin_ids=tuple(range(56)), num_segments=6, parts=112)
        assert p.num_units == 336
        assert all(p.size_of(i) == 3 for i in range(112))
