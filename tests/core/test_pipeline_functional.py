"""Functional pipeline vs the sequential reference: identical products.

The central integration property: the parallel pipelined system — real
arrays flowing through simulated ranks, redistribution, double buffering,
temporal weight dependencies — must report exactly the detections of the
sequential reference implementation, CPI for CPI.
"""

import numpy as np
import pytest

from repro import (
    Assignment,
    CPIStream,
    RadarScenario,
    STAPParams,
    SequentialSTAP,
    STAPPipeline,
    TargetTruth,
)
from repro.errors import ConfigurationError


def run_both(params, scenario, counts, num_cpis, azimuth_cycle=1):
    reference = SequentialSTAP(params).process_stream(
        CPIStream(params, scenario, azimuth_cycle=azimuth_cycle).take(num_cpis)
    )
    pipeline = STAPPipeline(
        params,
        Assignment(*counts, name="test"),
        mode="functional",
        stream=CPIStream(params, scenario, azimuth_cycle=azimuth_cycle),
        num_cpis=num_cpis,
        azimuth_cycle=azimuth_cycle,
    )
    return reference, pipeline.run()


@pytest.fixture
def scenario():
    return RadarScenario(
        clutter_to_noise_db=40.0,
        targets=(
            TargetTruth(range_cell=20, normalized_doppler=0.25, angle_deg=0.0, snr_db=5.0),
            TargetTruth(range_cell=30, normalized_doppler=0.05, angle_deg=-10.0, snr_db=10.0),
        ),
        seed=11,
    )


class TestEquivalence:
    def test_matches_reference_baseline_partitioning(self, scenario):
        params = STAPParams.tiny()
        ref, result = run_both(params, scenario, (3, 2, 2, 2, 2, 2, 2), num_cpis=5)
        assert len(result.reports) == 5
        for a, b in zip(ref, result.reports):
            assert a.same_detections(b), f"CPI {a.cpi_index}"

    def test_matches_reference_single_rank_tasks(self, scenario):
        params = STAPParams.tiny()
        ref, result = run_both(params, scenario, (1, 1, 1, 1, 1, 1, 1), num_cpis=4)
        for a, b in zip(ref, result.reports):
            assert a.same_detections(b)

    def test_matches_reference_hard_weight_unit_split(self, scenario):
        # More hard-weight ranks than hard bins: unit partitioning active.
        params = STAPParams.tiny()
        ref, result = run_both(params, scenario, (2, 2, 12, 2, 4, 3, 2), num_cpis=4)
        for a, b in zip(ref, result.reports):
            assert a.same_detections(b)

    def test_matches_reference_uneven_partitions(self, scenario):
        # Partition sizes that do not divide the axes evenly.
        params = STAPParams.tiny()
        ref, result = run_both(params, scenario, (5, 3, 5, 3, 5, 5, 7), num_cpis=4)
        for a, b in zip(ref, result.reports):
            assert a.same_detections(b)

    def test_matches_reference_with_azimuth_cycling(self, scenario):
        params = STAPParams.tiny()
        ref, result = run_both(
            params, scenario, (3, 2, 2, 2, 2, 2, 2), num_cpis=6, azimuth_cycle=2
        )
        for a, b in zip(ref, result.reports):
            assert a.same_detections(b)

    def test_detections_nonempty_once_trained(self, scenario):
        params = STAPParams.tiny()
        _ref, result = run_both(params, scenario, (3, 2, 2, 2, 2, 2, 2), num_cpis=5)
        assert any(len(r) > 0 for r in result.reports[1:])


class TestRunMechanics:
    def test_report_timestamps_increase(self, scenario):
        params = STAPParams.tiny()
        _ref, result = run_both(params, scenario, (2, 1, 2, 1, 2, 1, 2), num_cpis=5)
        times = [r.completed_at for r in result.reports]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_metrics_positive(self, scenario):
        params = STAPParams.tiny()
        _ref, result = run_both(params, scenario, (2, 1, 2, 1, 2, 1, 2), num_cpis=5)
        metrics = result.metrics
        assert metrics.measured_throughput > 0
        assert metrics.measured_latency > 0
        for task_metrics in metrics.tasks.values():
            assert task_metrics.comp > 0

    def test_functional_requires_stream(self):
        with pytest.raises(ConfigurationError):
            STAPPipeline(
                STAPParams.tiny(),
                Assignment(1, 1, 1, 1, 1, 1, 1),
                mode="functional",
                stream=None,
            )

    def test_azimuth_cycle_mismatch_rejected(self, scenario):
        params = STAPParams.tiny()
        with pytest.raises(ConfigurationError):
            STAPPipeline(
                params,
                Assignment(1, 1, 1, 1, 1, 1, 1),
                mode="functional",
                stream=CPIStream(params, scenario, azimuth_cycle=2),
                azimuth_cycle=1,
            )

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            STAPPipeline(STAPParams.tiny(), Assignment(1, 1, 1, 1, 1, 1, 1), mode="magic")
