"""Round-robin baseline (Section 2 / RTMCARM)."""

import pytest

from repro import RoundRobinSTAP, STAPParams, ruggedized_paragon
from repro.errors import ConfigurationError


@pytest.fixture
def params():
    return STAPParams.paper()


class TestSingleNodeTime:
    def test_latency_in_rtmcarm_ballpark(self, params):
        """The in-flight system 'achieved a latency of 2.35 seconds per
        CPI' on one 3-processor node; our model should land in that
        neighbourhood (same flops, calibrated rates)."""
        rr = RoundRobinSTAP(params)
        per_cpi = rr.single_node_seconds()
        assert 1.5 < per_cpi < 4.0

    def test_three_processors_faster_than_one(self, params):
        machine3 = ruggedized_paragon()
        rr3 = RoundRobinSTAP(params, machine=machine3)
        from dataclasses import replace

        machine1 = replace(
            machine3, node=replace(machine3.node, processors_per_node=1)
        )
        rr1 = RoundRobinSTAP(params, machine=machine1)
        assert rr3.single_node_seconds() < rr1.single_node_seconds()


class TestRoundRobinRun:
    def test_latency_independent_of_node_count(self, params):
        """'the latency is limited by what can be achieved using one
        compute node' — more nodes never reduce round-robin latency."""
        lat5 = RoundRobinSTAP(params, num_nodes=5).run(num_cpis=15).latency
        lat25 = RoundRobinSTAP(params, num_nodes=25).run(num_cpis=15).latency
        assert lat25 == pytest.approx(lat5, rel=0.05)

    def test_throughput_scales_with_nodes(self, params):
        thr5 = RoundRobinSTAP(params, num_nodes=5).run(num_cpis=25).throughput
        thr25 = RoundRobinSTAP(params, num_nodes=25).run(num_cpis=25).throughput
        assert thr25 / thr5 == pytest.approx(5.0, rel=0.3)

    def test_full_machine_hits_rtmcarm_throughput_scale(self, params):
        """'The system processed up to 10 CPIs per second.'"""
        result = RoundRobinSTAP(params).run(num_cpis=50)
        assert 5.0 < result.throughput < 20.0

    def test_paced_input_caps_throughput(self, params):
        result = RoundRobinSTAP(params, input_rate_cpis_per_s=2.0).run(num_cpis=15)
        assert result.throughput == pytest.approx(2.0, rel=0.1)

    def test_summary_renders(self, params):
        result = RoundRobinSTAP(params, num_nodes=4).run(num_cpis=10)
        assert "round-robin" in result.summary()

    def test_invalid_args(self, params):
        with pytest.raises(ConfigurationError):
            RoundRobinSTAP(params).run(num_cpis=0)
