"""Processes: scheduling, values, exceptions, interrupts, misuse."""

import pytest

from repro.des import Simulator
from repro.errors import InterruptError, SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestBasics:
    def test_process_body_runs_inside_event_loop(self, sim):
        order = []

        def proc(sim):
            order.append("body")
            yield sim.timeout(0)

        sim.process(proc(sim))
        order.append("after-spawn")
        sim.run()
        assert order == ["after-spawn", "body"]

    def test_return_value_becomes_process_value(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            return "result"

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "result"

    def test_yield_receives_event_value(self, sim):
        def proc(sim):
            got = yield sim.timeout(1.0, value=99)
            return got

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 99

    def test_join_other_process(self, sim):
        def worker(sim):
            yield sim.timeout(2.0)
            return "worker done"

        def boss(sim, worker_proc):
            result = yield worker_proc
            return (sim.now, result)

        w = sim.process(worker(sim))
        b = sim.process(boss(sim, w))
        sim.run()
        assert b.value == (2.0, "worker done")

    def test_join_already_finished_process(self, sim):
        def worker(sim):
            yield sim.timeout(1.0)
            return 7

        def boss(sim, w):
            yield sim.timeout(5.0)
            result = yield w
            return result

        w = sim.process(worker(sim))
        b = sim.process(boss(sim, w))
        sim.run()
        assert b.value == 7

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_yielding_non_event_raises_inside_process(self, sim):
        def proc(sim):
            try:
                yield 42
            except SimulationError as exc:
                return "caught: " + type(exc).__name__

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "caught: SimulationError"


class TestExceptions:
    def test_exception_in_body_fails_process(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            raise ValueError("body error")

        p = sim.process(proc(sim))
        with pytest.raises(ValueError, match="body error"):
            sim.run()
        assert p.triggered and not p.ok

    def test_failed_event_thrown_into_waiter(self, sim):
        def failer(sim, ev):
            yield sim.timeout(1.0)
            ev.fail(KeyError("nope"))

        def waiter(sim, ev):
            try:
                yield ev
            except KeyError:
                return "handled"

        ev = sim.event()
        sim.process(failer(sim, ev))
        p = sim.process(waiter(sim, ev))
        sim.run()
        assert p.value == "handled"

    def test_joining_failed_process_propagates(self, sim):
        def bad(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("inner")

        def outer(sim, bad_proc):
            try:
                yield bad_proc
            except RuntimeError as exc:
                return f"saw {exc}"

        b = sim.process(bad(sim))
        o = sim.process(outer(sim, b))
        sim.run()
        assert o.value == "saw inner"


class TestInterrupt:
    def test_interrupt_wakes_process(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
                return "overslept"
            except InterruptError as exc:
                return ("interrupted", exc.cause, sim.now)

        def interrupter(sim, target):
            yield sim.timeout(2.0)
            target.interrupt(cause="wake up")

        s = sim.process(sleeper(sim))
        sim.process(interrupter(sim, s))
        sim.run(until=200.0)
        assert s.value == ("interrupted", "wake up", 2.0)

    def test_interrupt_finished_process_raises(self, sim):
        def quick(sim):
            yield sim.timeout(0.0)

        p = sim.process(quick(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_wait_again(self, sim):
        def resilient(sim):
            try:
                yield sim.timeout(100.0)
            except InterruptError:
                pass
            yield sim.timeout(1.0)
            return sim.now

        def interrupter(sim, target):
            yield sim.timeout(2.0)
            target.interrupt()

        r = sim.process(resilient(sim))
        sim.process(interrupter(sim, r))
        sim.run(until=300.0)
        assert r.value == 3.0
