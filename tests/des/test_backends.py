"""Backend registry, plan lowering, and cross-backend bit-identity.

The whole value of the lowered/compiled simulator cores rests on one
contract: they change *nothing* about the simulated behaviour — not one
timestamp, not one detection.  These tests pin that contract three ways:

* registry/resolution semantics (``auto`` fallback, explicit-``compiled``
  error when the extension is absent, SimPoint validation);
* :class:`~repro.des.backends.plan.EnginePlan` tables equal the reference
  cost model value-for-value (same IEEE-754 operations, no reassociation);
* golden Table 7 case 1 and a hypothesis property over randomized traffic
  patterns, compared repr-exact across every available backend.

Cache-key coverage lives here too: results from different engine cores
must never be conflated by :mod:`repro.exec.cache`.
"""

from __future__ import annotations

import math
from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

import repro.des.backends as backends_mod
from repro import (
    Assignment,
    CPIStream,
    RadarScenario,
    STAPParams,
    STAPPipeline,
    TargetTruth,
)
from repro.core.assignment import CASE1, CASE3
from repro.des import Simulator
from repro.des.backends import (
    BACKEND_NAMES,
    ENGINE_SCHEMA,
    CompiledBackend,
    EngineBackend,
    EnginePlan,
    LoweredBackend,
    available_backends,
    compiled_available,
    get_backend,
    resolve_backend,
    timed_plan,
)
from repro.errors import ConfigurationError
from repro.exec.cache import CACHE_SCHEMA, cache_key, engine_fingerprint
from repro.exec.point import SimPoint
from repro.machine import afrl_paragon
from repro.mpi import ANY_SOURCE, ANY_TAG, World

pytestmark = pytest.mark.backends

needs_compiled = pytest.mark.skipif(
    not compiled_available(),
    reason="optional repro.des._despeed extension not built",
)

#: Every backend this process can actually run (used to parametrize the
#: identity tests so they cover the compiled core exactly when present).
ALL_BACKENDS = available_backends()


def _no_compiled(monkeypatch):
    """Make the process look like the C extension never built."""
    monkeypatch.setattr(backends_mod, "_COMPILED_CORE", None)
    monkeypatch.setattr(backends_mod, "_COMPILED_CHECKED", True)


# -- registry and resolution ---------------------------------------------------------
class TestResolution:
    def test_none_keeps_the_reference_engine(self):
        assert resolve_backend(None) == "python"
        assert get_backend(None).name == "python"

    @pytest.mark.parametrize("name", BACKEND_NAMES[:2])
    def test_concrete_names_resolve_to_themselves(self, name):
        assert resolve_backend(name) == name

    def test_unknown_name_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown simulator backend"):
            resolve_backend("fortran")

    def test_auto_prefers_compiled_when_available(self):
        expected = "compiled" if compiled_available() else "lowered"
        assert resolve_backend("auto") == expected

    def test_auto_falls_back_to_lowered_without_the_extension(self, monkeypatch):
        _no_compiled(monkeypatch)
        assert resolve_backend("auto") == "lowered"
        assert available_backends() == ("python", "lowered")

    def test_explicit_compiled_errors_without_the_extension(self, monkeypatch):
        # An explicit request must not silently run on a slower core.
        _no_compiled(monkeypatch)
        with pytest.raises(ConfigurationError, match="not available"):
            resolve_backend("compiled")
        with pytest.raises(ConfigurationError):
            get_backend("compiled")

    def test_backend_classes_and_simulator_tags(self):
        assert isinstance(get_backend("python"), EngineBackend)
        assert isinstance(get_backend("lowered"), LoweredBackend)
        assert get_backend("python").create_simulator().backend == "python"
        assert get_backend("lowered").create_simulator().backend == "lowered"

    @needs_compiled
    def test_compiled_backend_class_and_tag(self):
        backend = get_backend("compiled")
        assert isinstance(backend, CompiledBackend)
        assert backend.create_simulator().backend == "compiled"

    def test_simpoint_validates_backend_names(self):
        with pytest.raises(ConfigurationError, match="unknown simulator backend"):
            SimPoint(STAPParams.small(), CASE3, backend="fortran")


# -- EnginePlan tables ---------------------------------------------------------------
class TestEnginePlan:
    @pytest.fixture(scope="class")
    def machine(self):
        return afrl_paragon()

    @pytest.fixture(scope="class")
    def plan(self, machine):
        return EnginePlan.build(machine.mesh, machine.network_cost)

    def test_dimensions_and_port_numbering(self, plan, machine):
        n = machine.mesh.num_nodes
        assert plan.num_nodes == n
        assert plan.num_ports == 2 * n
        assert plan.hops.shape == plan.header_s.shape == (n, n)
        assert EnginePlan.eject_port(7) == 14
        assert EnginePlan.inject_port(7) == 15

    def test_hops_match_mesh_hop_distance(self, plan, machine):
        mesh = machine.mesh
        for src in range(mesh.num_nodes):
            for dst in range(mesh.num_nodes):
                assert plan.hops[src, dst] == mesh.hop_distance(src, dst)

    def test_header_latency_is_the_exact_reference_expression(self, plan, machine):
        # Bit-identity contract: one float64 multiply and one add per
        # element, exactly what Network._begin_transfer computes.
        cost = machine.network_cost
        for src in range(0, machine.mesh.num_nodes, 7):
            for dst in range(0, machine.mesh.num_nodes, 5):
                expected = cost.startup_s + cost.per_hop_s * float(
                    plan.hops[src, dst]
                )
                assert plan.header_s[src, dst] == expected

    def test_reference_backend_builds_no_plan(self, machine):
        backend = get_backend("python")
        assert backend.build_plan(
            machine.mesh, machine.network_cost, "endpoint"
        ) is None
        assert timed_plan(
            backend, machine.mesh, machine.network_cost, "endpoint"
        ) is None

    def test_timed_plan_stamps_build_seconds(self, machine):
        plan = timed_plan(
            get_backend("lowered"), machine.mesh, machine.network_cost, "endpoint"
        )
        assert plan is not None
        assert plan.build_seconds > 0.0


# -- golden Table 7 case 1 bit-identity ----------------------------------------------
def _timing_rows(result) -> list[list]:
    """Every (task, cpi, rank) timing as repr-exact strings, sorted."""
    rows = []
    for task, timings in sorted(result.collector.timings.items()):
        for t in timings:
            rows.append(
                [task, t.cpi_index, t.rank, repr(t.t0), repr(t.t1), repr(t.t2), repr(t.t3)]
            )
    rows.sort()
    return rows


def _nan_eq(a: float, b: float) -> bool:
    return (math.isnan(a) and math.isnan(b)) or a == b


def _run_case1(backend):
    return STAPPipeline(
        STAPParams.paper(), CASE1, num_cpis=6, backend=backend
    ).run()


class TestGoldenCase1:
    """Table 7 case 1 (236 nodes): every backend reproduces the reference
    run repr-exactly — makespan, wire traffic, and all per-rank timings."""

    @pytest.fixture(scope="class")
    def reference(self):
        return _run_case1(None)

    @pytest.mark.parametrize(
        "backend",
        [name for name in ALL_BACKENDS if name != "python"],
    )
    def test_bit_identical_to_reference(self, reference, backend):
        result = _run_case1(backend)
        assert repr(result.makespan) == repr(reference.makespan)
        assert result.network_messages == reference.network_messages
        assert result.network_bytes == reference.network_bytes
        assert _timing_rows(result) == _timing_rows(reference)
        assert _nan_eq(
            result.metrics.measured_throughput,
            reference.metrics.measured_throughput,
        )
        assert _nan_eq(
            result.metrics.measured_latency,
            reference.metrics.measured_latency,
        )


class TestFunctionalParity:
    """Functional mode: the numerics ride on simulated timestamps, so a
    backend that moved one event would move a detection."""

    @staticmethod
    def _run(backend):
        scenario = RadarScenario(
            clutter_to_noise_db=40.0,
            targets=(
                TargetTruth(
                    range_cell=20, normalized_doppler=0.25, angle_deg=0.0, snr_db=5.0
                ),
            ),
            seed=11,
        )
        params = STAPParams.tiny()
        return STAPPipeline(
            params,
            Assignment(3, 2, 2, 2, 2, 2, 2, name="parity"),
            mode="functional",
            stream=CPIStream(params, scenario),
            num_cpis=4,
            backend=backend,
        ).run()

    @pytest.mark.parametrize(
        "backend",
        [name for name in ALL_BACKENDS if name != "python"],
    )
    def test_detections_and_reports_identical(self, backend):
        reference = self._run(None)
        result = self._run(backend)
        assert repr(result.makespan) == repr(reference.makespan)
        assert [
            (r.cpi_index, repr(r.completed_at), r.detections)
            for r in result.reports
        ] == [
            (r.cpi_index, repr(r.completed_at), r.detections)
            for r in reference.reports
        ]


# -- hypothesis: randomized traffic, identical event sequences -----------------------
@st.composite
def traffic_patterns(draw):
    """A random multiset of (src, dst, tag) messages among a few ranks."""
    num_ranks = draw(st.integers(min_value=2, max_value=5))
    messages = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_ranks - 1),  # src
                st.integers(min_value=0, max_value=num_ranks - 1),  # dst
                st.integers(min_value=0, max_value=3),  # tag
            ).filter(lambda m: m[0] != m[1]),
            min_size=1,
            max_size=20,
        )
    )
    return num_ranks, messages


def _run_traffic(backend, num_ranks, messages, contention, use_wildcard):
    """One random program on one backend; returns its full observable trace.

    Message sizes straddle the eager threshold so both transfer protocols
    (and, under ENDPOINT contention, port queueing) are exercised.
    """
    sends_by_rank = defaultdict(list)
    expected_by_dst = defaultdict(list)
    for seq, (src, dst, tag) in enumerate(messages):
        nbytes = 64 if seq % 2 == 0 else 64 * 1024
        sends_by_rank[src].append((dst, tag, seq, nbytes))
        expected_by_dst[dst].append((src, tag))

    engine = get_backend(backend)
    sim = engine.create_simulator()
    world = World(
        sim, afrl_paragon(), num_ranks=num_ranks,
        contention=contention, backend=engine,
    )
    deliveries = []

    def program(ctx):
        requests = [
            ctx.isend(seq, dest=dst, tag=tag, nbytes=nbytes)
            for dst, tag, seq, nbytes in sends_by_rank.get(ctx.rank, [])
        ]
        for src, tag in expected_by_dst.get(ctx.rank, []):
            if use_wildcard:
                msg = yield ctx.irecv(source=ANY_SOURCE, tag=ANY_TAG)
            else:
                msg = yield ctx.irecv(source=src, tag=tag)
            deliveries.append(
                (ctx.rank, msg.source, msg.tag, msg.payload, repr(sim.now))
            )
        if requests:
            yield ctx.wait_all(requests)

    world.spawn_all(program)
    sim.run()
    waits = [
        repr(world.network.endpoint_wait_time(node))
        for node in range(num_ranks)
    ]
    return {
        "deliveries": deliveries,
        "now": repr(sim.now),
        "events": sim.events_processed,
        "seq": sim._seq,
        "messages": world.network.messages_sent,
        "bytes": world.network.bytes_sent,
        "waits": waits,
    }


class TestBackendEquivalence:
    @given(
        traffic_patterns(),
        st.sampled_from(("none", "endpoint")),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_event_sequences_identical_across_backends(
        self, pattern, contention, use_wildcard
    ):
        """Same random program, every backend: identical deliveries (order,
        payload, and receipt timestamp), identical final clock, identical
        event and schedule-sequence counts, identical wire totals."""
        num_ranks, messages = pattern
        reference = _run_traffic(
            "python", num_ranks, messages, contention, use_wildcard
        )
        for backend in ALL_BACKENDS:
            if backend == "python":
                continue
            got = _run_traffic(
                backend, num_ranks, messages, contention, use_wildcard
            )
            assert got == reference, f"backend {backend} diverged"


# -- cache keys ----------------------------------------------------------------------
class TestCacheIdentity:
    def test_schema_covers_the_engine_dimension(self):
        # 2 introduced engine identity; 3 is the campaign-store era.
        assert CACHE_SCHEMA == 3

    def test_engine_fingerprint_resolves_and_carries_schema(self):
        assert engine_fingerprint(None) == {
            "backend": "python",
            "engine_schema": ENGINE_SCHEMA,
        }
        assert engine_fingerprint("lowered")["backend"] == "lowered"
        auto = engine_fingerprint("auto")["backend"]
        assert auto == ("compiled" if compiled_available() else "lowered")

    def test_keys_differ_across_backends_for_the_same_point(self):
        params = STAPParams.small()
        keys = {
            cache_key(SimPoint(params, CASE3, backend=backend))
            for backend in (None, "lowered")
            + (("compiled",) if compiled_available() else ())
        }
        assert len(keys) == 2 + int(compiled_available())

    def test_auto_hashes_to_its_resolved_core(self):
        params = STAPParams.small()
        auto_key = cache_key(SimPoint(params, CASE3, backend="auto"))
        resolved = resolve_backend("auto")
        assert auto_key == cache_key(SimPoint(params, CASE3, backend=resolved))
