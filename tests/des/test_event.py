"""Events: state machine, values, failures, composite conditions."""

import pytest

from repro.des import Simulator, Event, Timeout, AllOf, AnyOf
from repro.errors import SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestEventStates:
    def test_new_event_is_pending(self, sim):
        ev = sim.event("x")
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_ok_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_sets_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_double_succeed_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_then_succeed_raises(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception_instance(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_processed_after_run(self, sim):
        ev = sim.event()
        ev.succeed("done")
        ev.defused = True
        sim.run(until=0.0)
        assert ev.processed


class TestTimeout:
    def test_fires_at_delay(self, sim):
        fired = []
        t = sim.timeout(2.5, value="v")
        t.callbacks.append(lambda ev: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]
        assert t.value == "v"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_zero_delay_fires_immediately(self, sim):
        t = sim.timeout(0.0)
        sim.run()
        assert t.processed
        assert sim.now == 0.0


class TestAllOf:
    def test_waits_for_all(self, sim):
        def proc(sim):
            a, b = sim.timeout(1.0, value="a"), sim.timeout(3.0, value="b")
            result = yield sim.all_of([a, b])
            assert sorted(result.values()) == ["a", "b"]
            return sim.now

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 3.0

    def test_empty_allof_fires_immediately(self, sim):
        def proc(sim):
            yield sim.all_of([])
            return sim.now

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 0.0

    def test_includes_already_processed_events(self, sim):
        def proc(sim):
            t = sim.timeout(1.0, value="early")
            yield t  # t is now processed
            result = yield sim.all_of([t, sim.timeout(1.0, value="late")])
            return sorted(result.values())

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == ["early", "late"]

    def test_fails_fast_on_child_failure(self, sim):
        def failer(sim, ev):
            yield sim.timeout(1.0)
            ev.fail(RuntimeError("child died"))

        def waiter(sim, ev):
            try:
                yield sim.all_of([ev, sim.timeout(10.0)])
            except RuntimeError as exc:
                return (str(exc), sim.now)

        ev = sim.event()
        sim.process(failer(sim, ev))
        p = sim.process(waiter(sim, ev))
        sim.run()
        # Failure propagated at t=1, without waiting for the long timeout.
        assert p.value == ("child died", 1.0)

    def test_mixed_simulators_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            AllOf(sim, [sim.event(), other.event()])


class TestAnyOf:
    def test_fires_on_first(self, sim):
        def proc(sim):
            result = yield sim.any_of(
                [sim.timeout(5.0, value="slow"), sim.timeout(1.0, value="fast")]
            )
            return (sim.now, list(result.values()))

        p = sim.process(proc(sim))
        sim.run(until=10.0)
        assert p.value == (1.0, ["fast"])

    def test_empty_anyof_fires_immediately(self, sim):
        def proc(sim):
            yield sim.any_of([])
            return sim.now

        p = sim.process(proc(sim))
        sim.run(until=1.0)
        assert p.value == 0.0
