"""Engine: run modes, ordering guarantees, deadlock detection, determinism."""

import pytest

from repro.des import Simulator
from repro.errors import DeadlockError, SimulationError


class TestRunModes:
    def test_run_until_time_stops_clock_there(self):
        sim = Simulator()
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_until_event_returns_its_value(self):
        sim = Simulator()

        def proc(sim, done):
            yield sim.timeout(3.0)
            done.succeed("finished")

        done = sim.event()
        sim.process(proc(sim, done))
        assert sim.run(until=done) == "finished"
        assert sim.now == 3.0

    def test_run_until_past_time_rejected(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0.5)

    def test_step_on_empty_queue_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.step()

    def test_run_until_event_that_never_fires_deadlocks(self):
        sim = Simulator()
        never = sim.event("never")
        with pytest.raises(DeadlockError):
            sim.run(until=never)


class TestOrdering:
    def test_same_time_events_fire_in_creation_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            t = sim.timeout(1.0, value=i)
            t.callbacks.append(lambda ev: order.append(ev.value))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_is_monotone(self):
        sim = Simulator(trace=True)

        def proc(sim, delay):
            for _ in range(5):
                yield sim.timeout(delay)

        for d in (0.3, 1.0, 0.7):
            sim.process(proc(sim, d))
        sim.run()
        assert sim.tracer.times_are_monotone()

    def test_determinism_across_runs(self):
        def build_and_run():
            sim = Simulator(trace=True)

            def ping(sim, n):
                for i in range(n):
                    yield sim.timeout(0.5 * (i + 1))

            for n in (3, 4, 5):
                sim.process(ping(sim, n))
            sim.run()
            return [(r.time, r.name) for r in sim.tracer]

        assert build_and_run() == build_and_run()


class TestDeadlock:
    def test_blocked_process_reported(self):
        sim = Simulator()

        def stuck(sim):
            yield sim.event("the-missing-event")

        sim.process(stuck(sim), name="victim")
        with pytest.raises(DeadlockError) as excinfo:
            sim.run()
        assert any("victim" in w for w in excinfo.value.waiting)
        assert any("the-missing-event" in w for w in excinfo.value.waiting)

    def test_clean_completion_is_not_deadlock(self):
        sim = Simulator()

        def fine(sim):
            yield sim.timeout(1.0)

        sim.process(fine(sim))
        sim.run()  # no exception
        assert sim.now == 1.0

    def test_scheduling_into_past_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim._schedule(sim.event(), delay=-1.0)


class TestPooledTimeouts:
    def test_pooled_timeout_fires_like_a_timeout(self):
        sim = Simulator()
        log = []

        def proc():
            value = yield sim.pooled_timeout(1.5, value="v")
            log.append((sim.now, value))

        sim.process(proc())
        sim.run()
        assert log == [(1.5, "v")]

    def test_pool_recycles_objects(self):
        sim = Simulator()
        seen = []

        def proc():
            for _ in range(3):
                timeout = sim.pooled_timeout(1.0)
                seen.append(id(timeout))
                yield timeout

        sim.process(proc())
        sim.run()
        # After the first timeout is processed it returns to the pool and
        # is handed back out for the next wait.
        assert len(set(seen)) < len(seen)

    def test_tracer_disables_recycling(self):
        sim = Simulator(trace=True)

        def proc():
            yield sim.pooled_timeout(1.0)
            yield sim.pooled_timeout(1.0)

        sim.process(proc())
        sim.run()
        # The tracer records event objects, so they must never be reused.
        assert not sim._timeout_pool

    def test_pooled_and_plain_timeouts_interleave_deterministically(self):
        def run_once(pooled: bool):
            sim = Simulator()
            order = []

            def proc(name, delay):
                make = sim.pooled_timeout if pooled else sim.timeout
                for _ in range(4):
                    yield make(delay)
                    order.append((name, sim.now))

            sim.process(proc("a", 1.0))
            sim.process(proc("b", 1.0))
            sim.run()
            return order

        # Same creation order => same processing order, pooled or not.
        assert run_once(True) == run_once(False)

    def test_events_processed_counter_advances(self):
        sim = Simulator()
        assert sim.events_processed == 0

        def proc():
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        assert sim.events_processed > 0
