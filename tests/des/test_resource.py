"""Resources and stores: capacity, FIFO order, cancellation, predicates."""

import pytest

from repro.des import Simulator, Resource, Store
from repro.errors import SimulationError


@pytest.fixture
def sim():
    return Simulator()


def hold(sim, res, log, ident, duration):
    req = res.request()
    yield req
    try:
        log.append(("start", ident, sim.now))
        yield sim.timeout(duration)
    finally:
        res.release()


class TestResource:
    def test_capacity_one_serializes(self, sim):
        res = Resource(sim, capacity=1)
        log = []
        for i in range(3):
            sim.process(hold(sim, res, log, i, 2.0))
        sim.run()
        assert log == [("start", 0, 0.0), ("start", 1, 2.0), ("start", 2, 4.0)]

    def test_capacity_two_overlaps(self, sim):
        res = Resource(sim, capacity=2)
        log = []
        for i in range(4):
            sim.process(hold(sim, res, log, i, 2.0))
        sim.run()
        starts = [t for _, _, t in log]
        assert starts == [0.0, 0.0, 2.0, 2.0]

    def test_fifo_grant_order(self, sim):
        res = Resource(sim, capacity=1)
        log = []
        for i in range(5):
            sim.process(hold(sim, res, log, i, 1.0))
        sim.run()
        assert [ident for _, ident, _ in log] == [0, 1, 2, 3, 4]

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_release_when_idle_raises(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_cancel_removes_waiter(self, sim):
        res = Resource(sim, capacity=1)
        first = res.request()
        second = res.request()
        assert res.queue_length == 1
        assert res.cancel(second) is True
        assert res.queue_length == 0
        assert res.cancel(second) is False  # already gone
        assert first.triggered  # first was granted immediately

    def test_wait_time_accounting(self, sim):
        res = Resource(sim, capacity=1)
        log = []
        sim.process(hold(sim, res, log, 0, 3.0))
        sim.process(hold(sim, res, log, 1, 1.0))
        sim.run()
        # Second process waited 3 seconds.
        assert res.total_wait_time == pytest.approx(3.0)
        assert res.total_grants == 2

    def test_in_use_tracks_holders(self, sim):
        res = Resource(sim, capacity=2)
        res.request()
        res.request()
        assert res.in_use == 2
        res.release()
        assert res.in_use == 1


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("a")

        def getter(sim, store):
            item = yield store.get()
            return item

        p = sim.process(getter(sim, store))
        sim.run()
        assert p.value == "a"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def getter(sim, store):
            item = yield store.get()
            return (item, sim.now)

        def putter(sim, store):
            yield sim.timeout(5.0)
            store.put("late")

        g = sim.process(getter(sim, store))
        sim.process(putter(sim, store))
        sim.run()
        assert g.value == ("late", 5.0)

    def test_fifo_item_order(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        got = []

        def getter(sim, store):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.process(getter(sim, store))
        sim.run()
        assert got == [0, 1, 2]

    def test_predicate_get_skips_nonmatching(self, sim):
        store = Store(sim)
        store.put(("b", 1))
        store.put(("a", 2))

        def getter(sim, store):
            item = yield store.get(lambda it: it[0] == "a")
            return item

        p = sim.process(getter(sim, store))
        sim.run()
        assert p.value == ("a", 2)
        assert store.peek_all() == [("b", 1)]

    def test_pending_predicate_satisfied_by_later_put(self, sim):
        store = Store(sim)

        def getter(sim, store):
            item = yield store.get(lambda it: it > 10)
            return (item, sim.now)

        def putter(sim, store):
            yield sim.timeout(1.0)
            store.put(5)  # does not match
            yield sim.timeout(1.0)
            store.put(50)  # matches

        g = sim.process(getter(sim, store))
        sim.process(putter(sim, store))
        sim.run()
        assert g.value == (50, 2.0)
        assert len(store) == 1  # the 5 is still there

    def test_len(self, sim):
        store = Store(sim)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2
