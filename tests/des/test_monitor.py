"""Tracer: structured event logging."""

from repro.des import Simulator, Tracer, TraceRecord


def run_traced(num_events=5):
    sim = Simulator(trace=True)

    def proc(sim):
        for _ in range(num_events):
            yield sim.timeout(1.0)

    sim.process(proc(sim), name="walker")
    sim.run()
    return sim


class TestTracer:
    def test_records_processed_events(self):
        sim = run_traced(5)
        # 1 start event + 5 timeouts.
        assert len(sim.tracer) >= 6

    def test_record_fields(self):
        sim = run_traced(2)
        timeout_records = sim.tracer.filter("timeout")
        assert timeout_records
        record = timeout_records[0]
        assert isinstance(record, TraceRecord)
        assert record.kind == "Timeout"
        assert record.time >= 0.0

    def test_filter_by_substring(self):
        sim = run_traced(3)
        assert len(sim.tracer.filter("timeout(1)")) == 3
        assert sim.tracer.filter("no-such-event") == []

    def test_str_renders(self):
        sim = run_traced(1)
        text = str(sim.tracer.records[0])
        assert "[" in text and "]" in text

    def test_max_records_drops_overflow(self):
        tracer = Tracer(max_records=3)
        sim = Simulator()
        sim.tracer = tracer

        def proc(sim):
            for _ in range(10):
                yield sim.timeout(0.5)

        sim.process(proc(sim))
        sim.run()
        assert len(tracer) == 3
        assert tracer.dropped > 0

    def test_ring_mode_keeps_last_records(self):
        tracer = Tracer(max_records=3, mode="ring")
        sim = Simulator()
        sim.tracer = tracer

        def proc(sim):
            for _ in range(10):
                yield sim.timeout(0.5)

        sim.process(proc(sim))
        sim.run()
        assert len(tracer) == 3
        assert tracer.dropped > 0
        # Ring buffer retains the *latest* events: the final record is the
        # last event processed, at the end of simulated time.
        times = [r.time for r in tracer]
        assert times == sorted(times)
        assert times[-1] == sim.now
        assert tracer.times_are_monotone()

    def test_ring_and_drop_retain_opposite_ends(self):
        def fill(tracer):
            for i in range(6):
                tracer.record(float(i), type("E", (), {"name": f"e{i}"})())
            return [r.time for r in tracer.records]

        assert fill(Tracer(max_records=2, mode="drop")) == [0.0, 1.0]
        assert fill(Tracer(max_records=2, mode="ring")) == [4.0, 5.0]

    def test_invalid_mode_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Tracer(mode="spiral")

    def test_clear_keeps_drop_counter(self):
        tracer = Tracer(max_records=1)
        tracer.record(0.0, type("E", (), {"name": "a"})())
        tracer.record(1.0, type("E", (), {"name": "b"})())
        assert tracer.dropped == 1
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 1

    def test_iteration(self):
        sim = run_traced(2)
        assert list(iter(sim.tracer)) == sim.tracer.records

    def test_monotone_check(self):
        sim = run_traced(4)
        assert sim.tracer.times_are_monotone()
