"""Runtime failure modes: crashes, exceptions, empty streams, cleanup.

A pipeline of nine shared-memory channels and seven-plus processes has
exactly one acceptable failure behaviour: the parent raises a
:class:`~repro.errors.PipelineError` naming the failing stage, every
worker exits, and every shared-memory slot is unlinked.  These tests
break the pipeline on purpose and check that contract.
"""

import os
import time

import pytest

from repro import CPIStream, ParallelSTAP, PipelineError
from tests.core.test_golden_functional import golden_scenario

pytestmark = pytest.mark.rt


def _shm_entries():
    """Names of multiprocessing shared-memory segments currently mapped."""
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


class BrokenStream:
    """Delegates to a real stream but raises on one chosen CPI."""

    def __init__(self, inner, fail_at: int):
        self.inner = inner
        self.fail_at = fail_at
        self.params = inner.params
        self.azimuth_cycle = inner.azimuth_cycle

    def cube(self, cpi_index):
        if cpi_index == self.fail_at:
            raise ValueError(f"synthetic front-end fault at CPI {cpi_index}")
        return self.inner.cube(cpi_index)


class CrashingStream(BrokenStream):
    """Kills its worker outright: no exception, no message, no cleanup."""

    def cube(self, cpi_index):
        if cpi_index == self.fail_at:
            os._exit(13)
        return self.inner.cube(cpi_index)


class StallingStream(BrokenStream):
    """Hangs the source long enough to trip the parent's deadline."""

    def cube(self, cpi_index):
        if cpi_index == self.fail_at:
            time.sleep(30.0)
        return self.inner.cube(cpi_index)


@pytest.fixture
def tiny_golden_stream(tiny_params):
    return CPIStream(tiny_params, golden_scenario())


def test_worker_exception_names_the_stage(tiny_params, tiny_golden_stream):
    """A mid-CPI exception surfaces as PipelineError with the stage, the
    replica, and the worker's traceback."""
    stream = BrokenStream(tiny_golden_stream, fail_at=2)
    rt = ParallelSTAP(tiny_params, stream, num_cpis=5)
    before = _shm_entries()
    with pytest.raises(PipelineError) as excinfo:
        rt.run(timeout=60.0)
    assert excinfo.value.stage == "doppler"
    assert excinfo.value.replica == 0
    assert "synthetic front-end fault at CPI 2" in str(excinfo.value)
    # Everything the run created is unlinked again.
    assert _shm_entries() <= before


def test_hard_crash_is_detected(tiny_params, tiny_golden_stream):
    """A worker dying without any message (os._exit) is still diagnosed."""
    stream = CrashingStream(tiny_golden_stream, fail_at=1)
    rt = ParallelSTAP(tiny_params, stream, num_cpis=4)
    before = _shm_entries()
    with pytest.raises(PipelineError) as excinfo:
        rt.run(timeout=60.0)
    assert excinfo.value.stage == "doppler"
    assert "died without reporting" in str(excinfo.value)
    assert "13" in str(excinfo.value)  # the exit code is in the message
    assert _shm_entries() <= before


def test_timeout_tears_the_pipeline_down(tiny_params, tiny_golden_stream):
    stream = StallingStream(tiny_golden_stream, fail_at=1)
    rt = ParallelSTAP(tiny_params, stream, num_cpis=4)
    before = _shm_entries()
    start = time.perf_counter()
    with pytest.raises(PipelineError) as excinfo:
        rt.run(timeout=1.0)
    assert "exceeded" in str(excinfo.value)
    # Teardown must not wait out the 30 s stall.
    assert time.perf_counter() - start < 20.0
    assert _shm_entries() <= before


def test_zero_cpi_stream_terminates_cleanly(tiny_params, tiny_golden_stream):
    """Quota-based termination: an empty stream means every worker's quota
    is empty and the run completes immediately — no poison pills needed."""
    import math

    rt = ParallelSTAP(tiny_params, tiny_golden_stream, num_cpis=0)
    before = _shm_entries()
    result = rt.run(timeout=60.0)
    assert result.reports == []
    assert result.num_cpis == 0
    assert math.isnan(result.throughput)
    assert _shm_entries() <= before


def test_queues_drain_on_successful_shutdown(tiny_params, tiny_golden_stream):
    """After a normal run nothing is left mapped: all channel slots are
    closed and unlinked, all workers joined."""
    import multiprocessing

    rt = ParallelSTAP(tiny_params, tiny_golden_stream, num_cpis=3)
    before = _shm_entries()
    result = rt.run(timeout=60.0)
    assert len(result.reports) == 3
    assert _shm_entries() <= before
    assert not [p for p in multiprocessing.active_children()
                if p.name.startswith("rt-")]


def test_invalid_configuration_rejected(tiny_params, tiny_golden_stream):
    from repro import ConfigurationError

    with pytest.raises(ConfigurationError):
        ParallelSTAP(tiny_params, tiny_golden_stream, num_cpis=-1)
    with pytest.raises(ConfigurationError):
        ParallelSTAP(tiny_params, tiny_golden_stream, num_cpis=2,
                     azimuth_cycle=0)
    with pytest.raises(ConfigurationError):
        # Stream cycle disagrees with the runtime cycle.
        ParallelSTAP(tiny_params, tiny_golden_stream, num_cpis=2,
                     azimuth_cycle=3)
    with pytest.raises(ConfigurationError):
        ParallelSTAP(tiny_params, tiny_golden_stream, num_cpis=2, depth=0)
