"""Bit-identity: the parallel runtime equals the sequential reference.

The runtime's whole claim is that distributing the functional chain over
worker processes changes *nothing numerically*: the channels carry the
exact arrays the serial code materializes and every kernel is called with
identical inputs, so detections must be equal to the last bit — power and
threshold floats included — on the frozen golden scenario, on replicated /
multi-azimuth configurations, and on hypothesis-randomized scenarios.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CPIStream,
    ParallelSTAP,
    RadarScenario,
    STAPParams,
    SequentialSTAP,
    TargetTruth,
)
from repro.rt.plan import StagePlan

from tests.core.test_golden_functional import (
    GOLDEN_PATH,
    NUM_CPIS,
    golden_scenario,
    report_rows,
)

pytestmark = pytest.mark.rt


def detection_rows(reports):
    return [report_rows(r) for r in sorted(reports, key=lambda r: r.cpi_index)]


def run_parallel(params, scenario, num_cpis, azimuth_cycle=1, **kwargs):
    stream = CPIStream(params, scenario, azimuth_cycle=azimuth_cycle)
    rt = ParallelSTAP(params, stream, num_cpis=num_cpis,
                      azimuth_cycle=azimuth_cycle, **kwargs)
    return rt.run(timeout=120.0)


def sequential_rows(params, scenario, num_cpis, azimuth_cycle=1):
    stream = CPIStream(params, scenario, azimuth_cycle=azimuth_cycle)
    reports = SequentialSTAP(params).process_stream(stream.take(num_cpis))
    return [report_rows(r) for r in reports]


def test_parallel_matches_the_golden_seed(tiny_params):
    """The frozen seed detections, reproduced by real worker processes."""
    golden = json.loads(GOLDEN_PATH.read_text())["tiny"]
    result = run_parallel(tiny_params, golden_scenario(), NUM_CPIS)
    assert result.num_cpis == NUM_CPIS
    rows = detection_rows(result.reports)
    for expected, got in zip(golden, rows):
        assert got == expected["detections"]


def test_replicated_multi_azimuth_matches_sequential(tiny_params):
    """Replicated stages + a 2-azimuth cycle: the weight revisit routing
    and the quiescent cold start must still be bit-identical."""
    scenario = golden_scenario()
    result = run_parallel(tiny_params, scenario, 7, azimuth_cycle=2,
                          workers=10)
    # The scaled plan must actually replicate something, or this test
    # exercises nothing beyond the single-worker case.
    assert result.plan.total_workers == 10
    assert detection_rows(result.reports) == sequential_rows(
        tiny_params, scenario, 7, azimuth_cycle=2)


def test_single_buffer_depth_matches_sequential(tiny_params):
    """depth=1 (no double buffering) serializes the channels harder but
    must not change the numbers."""
    scenario = golden_scenario()
    result = run_parallel(tiny_params, scenario, 4, depth=1)
    assert detection_rows(result.reports) == sequential_rows(
        tiny_params, scenario, 4)


def test_explicit_plan_matches_sequential(tiny_params):
    scenario = golden_scenario()
    plan = StagePlan((2, 1, 1, 2, 2, 1, 1))
    result = run_parallel(tiny_params, scenario, 6, plan=plan)
    assert result.plan is plan
    assert detection_rows(result.reports) == sequential_rows(
        tiny_params, scenario, 6)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    cnr=st.floats(min_value=0.0, max_value=50.0),
    range_cell=st.integers(min_value=0, max_value=30),
    doppler=st.floats(min_value=-0.4, max_value=0.4),
    angle=st.floats(min_value=-30.0, max_value=30.0),
    snr=st.floats(min_value=0.0, max_value=20.0),
    azimuth_cycle=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=5, deadline=None)
def test_randomized_scenarios_match_sequential(
    seed, cnr, range_cell, doppler, angle, snr, azimuth_cycle
):
    """Bit identity is not a property of one lucky scenario."""
    params = STAPParams.tiny()
    scenario = RadarScenario(
        clutter_to_noise_db=cnr,
        targets=(
            TargetTruth(range_cell=range_cell, normalized_doppler=doppler,
                        angle_deg=angle, snr_db=snr),
        ),
        seed=seed,
    )
    num_cpis = 2 * azimuth_cycle + 1  # at least one trained revisit per azimuth
    result = run_parallel(params, scenario, num_cpis,
                          azimuth_cycle=azimuth_cycle, workers=9)
    assert detection_rows(result.reports) == sequential_rows(
        params, scenario, num_cpis, azimuth_cycle=azimuth_cycle)


def test_pipeline_run_parallel_entry_point(tiny_params):
    """STAPPipeline.run_parallel wires the same configuration through."""
    from repro import Assignment
    from repro.core.pipeline import STAPPipeline

    scenario = golden_scenario()
    pipeline = STAPPipeline(
        tiny_params, Assignment(1, 1, 1, 1, 1, 1, 1, name="rt-test"),
        mode="functional", num_cpis=4,
        stream=CPIStream(tiny_params, scenario),
    )
    result = pipeline.run_parallel(workers=8)
    assert detection_rows(result.reports) == sequential_rows(
        tiny_params, scenario, 4)


def test_run_parallel_requires_functional_mode(tiny_params):
    from repro import Assignment, ConfigurationError
    from repro.core.pipeline import STAPPipeline

    pipeline = STAPPipeline(
        tiny_params, Assignment(1, 1, 1, 1, 1, 1, 1, name="rt-test"),
        num_cpis=4)
    with pytest.raises(ConfigurationError):
        pipeline.run_parallel()
