"""Runtime observability: worker metrics merge into the campaign registry.

Workers run in separate processes, so their metric increments cannot land
in the parent's registry directly; each worker snapshots its own (forked)
registry and ships it home in its final message.  After a metered run the
merged totals must look exactly as if one process had recorded every
stage — per-stage item counts equal to the CPI count, wait/backpressure
histograms present, and the run-level rollups flushed by the parent.
"""

import pytest

from repro import CPIStream, ParallelSTAP
from repro.obs.metrics import metrics_registry, series_name
from tests.core.test_golden_functional import golden_scenario

pytestmark = [pytest.mark.rt, pytest.mark.metrics]

NUM_CPIS = 4


@pytest.fixture
def metered_registry():
    metrics_registry.enable(reset=True)
    try:
        yield metrics_registry
    finally:
        metrics_registry.disable()


@pytest.fixture
def metered_result(tiny_params, metered_registry):
    stream = CPIStream(tiny_params, golden_scenario())
    rt = ParallelSTAP(tiny_params, stream, num_cpis=NUM_CPIS)
    return rt.run(timeout=120.0), metered_registry.snapshot().to_dict()


def test_result_carries_a_merged_snapshot(metered_result):
    result, _ = metered_result
    assert result.metrics is not None
    counters = result.metrics.to_dict()["counters"]
    for stage in ("doppler", "cfar", "easy_weight", "pulse_compression"):
        series = series_name("rt_items_total", {"stage": stage})
        assert counters[series]["value"] == NUM_CPIS, series


def test_every_stage_counts_its_quota(metered_result):
    """Summed across replicas, every stage processed every CPI once."""
    from repro.core.assignment import TASK_NAMES

    _, snapshot = metered_result
    counters = snapshot["counters"]
    for stage in TASK_NAMES:
        series = series_name("rt_items_total", {"stage": stage})
        assert counters[series]["value"] == NUM_CPIS, series


def test_wait_histograms_present_per_stage(metered_result):
    """Every consuming stage recorded queue waits; every producing stage
    recorded backpressure (possibly all-zero, but the series exists)."""
    _, snapshot = metered_result
    histograms = snapshot["histograms"]
    # cfar consumes (waits); doppler produces (feels backpressure).
    assert series_name("rt_queue_wait_seconds", {"stage": "cfar"}) in histograms
    assert (series_name("rt_backpressure_seconds", {"stage": "doppler"})
            in histograms)
    comp = histograms[series_name("rt_comp_seconds", {"stage": "doppler"})]
    assert comp["count"] == NUM_CPIS


def test_parent_flushes_run_rollups(metered_result):
    _, snapshot = metered_result
    counters = snapshot["counters"]
    assert counters[series_name("rt_runs_total")]["value"] == 1
    assert counters[series_name("rt_reports_total")]["value"] == NUM_CPIS
    gauges = snapshot["gauges"]
    assert gauges[series_name("rt_workers")]["value"] >= 7
    assert (series_name("rt_throughput_cpis_per_second")
            in snapshot["histograms"])


def test_unmetered_run_records_nothing(tiny_params):
    """Default-off discipline: with the registry disabled the run must not
    allocate a snapshot or pay for timing."""
    assert not metrics_registry.enabled
    stream = CPIStream(tiny_params, golden_scenario())
    result = ParallelSTAP(tiny_params, stream, num_cpis=2).run(timeout=120.0)
    assert result.metrics is None
