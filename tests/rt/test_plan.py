"""StagePlan: replication scaling and deterministic routing.

These are pure-Python properties (no worker processes): the plan is the
contract producers and consumers rely on *without communicating*, so the
partition/ownership laws here are what make the runtime deadlock-free.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.assignment import TASK_NAMES, CASE1, CASE2, Assignment
from repro.errors import ConfigurationError
from repro.rt.plan import WEIGHT_STAGES, StagePlan, edge_specs

pytestmark = pytest.mark.rt


# -- construction ----------------------------------------------------------------
def test_counts_must_cover_every_stage():
    with pytest.raises(ConfigurationError):
        StagePlan((1, 1, 1))


def test_every_stage_needs_a_worker():
    counts = [1] * len(TASK_NAMES)
    counts[2] = 0
    with pytest.raises(ConfigurationError):
        StagePlan(tuple(counts))


def test_uniform_caps_weight_stages_at_cycle():
    plan = StagePlan.uniform(replicas=3, azimuth_cycle=2)
    for stage in TASK_NAMES:
        expected = 2 if stage in WEIGHT_STAGES else 3
        assert plan.of(stage) == expected


def test_from_assignment_keeps_the_paper_shape():
    # Case 1 gives hard weights the lion's share (192 of 236 nodes);
    # a scaled plan must keep that dominance.
    plan = StagePlan.from_assignment(CASE1, workers=16, azimuth_cycle=16)
    assert plan.total_workers == 16
    assert plan.of("hard_weight") == max(plan.as_dict().values())
    assert all(count >= 1 for count in plan.counts)


def test_from_assignment_meets_exact_budget_when_feasible():
    for workers in (7, 9, 12, 20):
        plan = StagePlan.from_assignment(CASE2, workers=workers,
                                         azimuth_cycle=workers)
        assert plan.total_workers == workers


def test_from_assignment_floors_tiny_budgets_to_one_per_stage():
    plan = StagePlan.from_assignment(CASE1, workers=3)
    assert plan.total_workers == len(TASK_NAMES)
    assert set(plan.counts) == {1}


def test_weight_replication_never_exceeds_azimuth_cycle():
    plan = StagePlan.from_assignment(CASE1, workers=64, azimuth_cycle=2)
    for stage in WEIGHT_STAGES:
        assert plan.of(stage) <= 2


# -- routing ---------------------------------------------------------------------
@given(
    workers=st.integers(min_value=7, max_value=40),
    azimuth_cycle=st.integers(min_value=1, max_value=6),
    num_cpis=st.integers(min_value=0, max_value=40),
)
@settings(max_examples=60, deadline=None)
def test_stage_cpis_partition_the_stream(workers, azimuth_cycle, num_cpis):
    """Every CPI is owned by exactly one replica of every stage."""
    plan = StagePlan.from_assignment(CASE1, workers=workers,
                                     azimuth_cycle=azimuth_cycle)
    for stage in TASK_NAMES:
        quotas = [
            plan.stage_cpis(stage, r, num_cpis, azimuth_cycle)
            for r in range(plan.of(stage))
        ]
        flat = sorted(i for quota in quotas for i in quota)
        assert flat == list(range(num_cpis))
        for quota in quotas:
            assert quota == sorted(quota)  # strictly increasing order


@given(
    cpi=st.integers(min_value=0, max_value=500),
    azimuth_cycle=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_weight_owner_is_a_function_of_azimuth(cpi, azimuth_cycle):
    """Weight state is keyed per azimuth: all visits to an azimuth land on
    the same replica, so the recursion history never splits."""
    plan = StagePlan.from_assignment(CASE1, workers=12,
                                     azimuth_cycle=azimuth_cycle)
    for stage in WEIGHT_STAGES:
        owner = plan.owner_of(stage, cpi, azimuth_cycle)
        revisit = plan.owner_of(stage, cpi + azimuth_cycle, azimuth_cycle)
        assert owner == revisit


def test_edge_specs_cover_every_edge(tiny_params):
    from repro.rt.plan import EDGES

    specs = edge_specs(tiny_params)
    assert set(specs) == set(EDGES)
    for edge, (shape, dtype) in specs.items():
        assert all(dim > 0 for dim in shape), (edge, shape)


def test_edge_dtypes_match_the_serial_chain(tiny_params):
    """Doppler output is always complex128; power is the params' real
    dtype (float32 for the default complex64 configuration)."""
    import numpy as np

    specs = edge_specs(tiny_params)
    assert specs["easy_data"][1] == np.dtype(np.complex128)
    assert specs["power"][1] == np.dtype(tiny_params.real_dtype)
