"""The public API surface: everything advertised is importable and sane."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.des",
            "repro.machine",
            "repro.mpi",
            "repro.radar",
            "repro.stap",
            "repro.core",
            "repro.scheduling",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))


class TestTagSpaces:
    def test_pipeline_tags_below_collective_tags(self):
        """Pipeline edge tags must never collide with the tag range the
        collectives reserve, for any plausible run length."""
        from repro.core.redistribution import TAG_STRIDE, edge_tag
        from repro.mpi.collectives import COLLECTIVE_TAG_BASE

        max_cpis = 10_000
        assert edge_tag("pc_to_cfar", max_cpis) < COLLECTIVE_TAG_BASE
        assert TAG_STRIDE * max_cpis < COLLECTIVE_TAG_BASE

    def test_edge_tags_unique_per_cpi(self):
        from repro.core.redistribution import TAG_CODES, edge_tag

        tags = {edge_tag(name, cpi) for name in TAG_CODES for cpi in range(50)}
        assert len(tags) == len(TAG_CODES) * 50
