"""The span model and TraceSink: API, bounds, and the pipeline span tree."""

from __future__ import annotations

import math

import pytest

from repro import Assignment, STAPParams, STAPPipeline
from repro.core.assignment import TASK_NAMES
from repro.des import Simulator
from repro.obs import (
    MessageRecord,
    Span,
    TraceSink,
    bucket_bounds,
    wait_bucket,
)

pytestmark = pytest.mark.obs

TINY_ASSIGNMENT = Assignment(3, 2, 2, 2, 2, 2, 2, name="obs-test")
NUM_CPIS = 2

#: Tasks whose output feeds a later CPI (TD(1,3)/TD(2,4)) and therefore
#: never sit on the latency path of equation (2).
WEIGHT_TASKS = {"easy_weight", "hard_weight"}


@pytest.fixture(scope="module")
def traced_result():
    return STAPPipeline(
        STAPParams.tiny(), TINY_ASSIGNMENT, num_cpis=NUM_CPIS, trace=True
    ).run()


# -- sink unit tests ---------------------------------------------------------------
class TestTraceSink:
    def test_add_span_and_queries(self):
        sink = TraceSink()
        parent = sink.add_span("doppler", 0, "iteration", 1.0, 4.0, rank=2)
        child = sink.add_span(
            "doppler", 0, "recv", 1.0, 2.0, rank=2, parent_id=parent.span_id
        )
        assert len(sink) == 2
        assert child.duration == pytest.approx(1.0)
        assert sink.spans_of(task="doppler", phase="recv") == [child]
        assert sink.spans_of(cpi=1) == []
        assert sink.children_of(parent) == [child]

    def test_span_context_manager_uses_bound_clock(self):
        sink = TraceSink()
        sim = Simulator()
        sink.bind(sim)

        def proc():
            with sink.span("worker", cpi=0, phase="comp", rank=1) as span:
                yield sim.timeout(2.5)
            assert span.start == pytest.approx(0.0)
            assert span.end == pytest.approx(2.5)

        sim.process(proc())
        sim.run()
        assert len(sink) == 1
        assert sink.spans[0].phase == "comp"

    def test_now_is_zero_before_bind(self):
        assert TraceSink().now() == 0.0

    def test_record_iteration_builds_phase_tree(self):
        sink = TraceSink()
        sink.record_iteration(
            "cfar", local_rank=1, world_rank=9, cpi=3,
            t0=1.0, t1=2.0, t2=3.5, t3=4.0,
        )
        assert len(sink) == 4
        (iteration,) = sink.spans_of(phase="iteration")
        children = sink.children_of(iteration)
        assert [c.phase for c in children] == ["recv", "comp", "send"]
        assert children[0].start == iteration.start == 1.0
        assert children[-1].end == iteration.end == 4.0
        # Phases tile the iteration with no gaps.
        assert children[0].end == children[1].start == 2.0
        assert children[1].end == children[2].start == 3.5
        assert all(c.rank == 9 and c.local_rank == 1 and c.cpi == 3
                   for c in children)

    def test_bounded_spans_drop_and_count(self):
        sink = TraceSink(max_spans=2)
        for i in range(5):
            sink.add_span("t", 0, "comp", float(i), float(i + 1))
        assert len(sink) == 2
        assert sink.dropped_spans == 3
        # record_iteration keeps counting drops through the same gate.
        sink.record_iteration("t", 0, 0, 0, 0.0, 1.0, 2.0, 3.0)
        assert len(sink) == 2
        assert sink.dropped_spans == 7

    def test_bounded_messages_return_none(self):
        sink = TraceSink(max_messages=1)
        assert isinstance(sink.new_message(0, 1, 5, 64, 0.0), MessageRecord)
        assert sink.new_message(1, 2, 5, 64, 1.0) is None
        assert sink.dropped_messages == 1
        assert len(sink.messages) == 1

    def test_bounded_link_intervals_keep_stats(self):
        sink = TraceSink(max_link_intervals=1)
        sink.record_link_hold("inject[0]", 0.0, 1.0, 64, wait=0.0)
        sink.record_link_hold("inject[0]", 2.0, 3.0, 64, wait=0.5)
        # Aggregate stats always accumulate; only the interval list is capped.
        assert sink.link_stats["inject[0]"].messages == 2
        assert sink.link_stats["inject[0]"].wait_seconds == pytest.approx(0.5)
        assert len(sink.link_intervals["inject[0]"]) == 1
        assert sink.dropped_link_intervals == 1


class TestWaitHistogram:
    def test_zero_wait_bucket(self):
        assert wait_bucket(0.0) == -1
        assert wait_bucket(1e-9) == -1  # below one microsecond

    def test_buckets_are_power_of_two_microseconds(self):
        assert wait_bucket(1.5e-6) == 1  # 1us -> [1, 2)
        assert wait_bucket(3e-6) == 2    # 3us -> [2, 4)
        assert wait_bucket(1e-3) == 10   # 1000us -> [512, 1024)

    def test_bucket_bounds_cover_samples(self):
        for wait in (2e-6, 7e-6, 1e-4, 3e-3):
            bucket = wait_bucket(wait)
            lo, hi = bucket_bounds(bucket)
            assert lo <= wait * 1e6 < hi


# -- pipeline span tree ------------------------------------------------------------
class TestPipelineSpanTree:
    """Golden structure of a 2-CPI tiny pipeline's span tree."""

    def test_trace_off_by_default(self):
        result = STAPPipeline(
            STAPParams.tiny(), TINY_ASSIGNMENT, num_cpis=NUM_CPIS
        ).run()
        assert result.trace is None

    def test_one_iteration_per_task_rank_cpi(self, traced_result):
        sink = traced_result.trace
        iterations = sink.spans_of(phase="iteration")
        counts = dict(zip(TASK_NAMES, TINY_ASSIGNMENT.counts()))
        expected_keys = {
            (task, rank, cpi)
            for task, nodes in counts.items()
            for rank in range(nodes)
            for cpi in range(NUM_CPIS)
        }
        got_keys = {(s.task, s.local_rank, s.cpi) for s in iterations}
        assert got_keys == expected_keys
        assert len(iterations) == len(expected_keys)  # no duplicates

    def test_every_iteration_has_recv_comp_send_children(self, traced_result):
        sink = traced_result.trace
        for iteration in sink.spans_of(phase="iteration"):
            children = sink.children_of(iteration)
            assert [c.phase for c in children] == ["recv", "comp", "send"]
            assert children[0].start == iteration.start
            assert children[-1].end == iteration.end
            for a, b in zip(children, children[1:]):
                assert a.end == b.start
            for child in children:
                assert (child.task, child.rank, child.cpi) == (
                    iteration.task, iteration.rank, iteration.cpi,
                )

    def test_phase_spans_have_no_grandchildren(self, traced_result):
        sink = traced_result.trace
        for span in sink.spans:
            if span.phase != "iteration":
                assert sink.children_of(span) == []
                assert span.parent_id is not None

    def test_weight_tasks_off_latency_path(self, traced_result):
        for span in traced_result.trace.spans:
            assert span.latency_path == (span.task not in WEIGHT_TASKS)

    def test_spans_match_collector_timings_exactly(self, traced_result):
        """The span tree carries the same t0..t3 the metrics are built on."""
        sink = traced_result.trace
        from_spans = {
            (s.task, s.cpi, s.local_rank): s
            for s in sink.spans_of(phase="iteration")
        }
        rows = 0
        for task, timings in traced_result.collector.timings.items():
            for t in timings:
                span = from_spans[(task, t.cpi_index, t.rank)]
                recv, comp, send = sink.children_of(span)
                assert (recv.start, comp.start, send.start, send.end) == (
                    t.t0, t.t1, t.t2, t.t3,
                )
                rows += 1
        assert rows == len(from_spans)


# -- message records ---------------------------------------------------------------
class TestMessageRecords:
    def test_records_complete_and_ordered(self, traced_result):
        sink = traced_result.trace
        assert sink.messages
        for record in sink.messages:
            assert record.nbytes > 0
            assert record.src != record.dst
            # A drained run leaves nothing in flight.
            assert not math.isnan(record.t_complete)
            assert not math.isnan(record.t_recv_post)
            assert record.t_match >= record.t_send_post
            assert record.t_match >= record.t_recv_post
            assert record.t_complete >= record.t_match
            assert record.match_delay >= 0.0
            assert record.transfer_time >= 0.0

    def test_message_count_matches_network_counter(self, traced_result):
        assert len(traced_result.trace.messages) == traced_result.network_messages


# -- determinism -------------------------------------------------------------------
class TestObservationIsPassive:
    def test_traced_run_bit_identical_to_untraced(self):
        """Attaching a sink must not move a single timestamp."""
        def run(trace):
            return STAPPipeline(
                STAPParams.tiny(), TINY_ASSIGNMENT, num_cpis=3, trace=trace
            ).run()

        plain, traced = run(False), run(True)
        assert repr(plain.makespan) == repr(traced.makespan)
        assert plain.network_messages == traced.network_messages
        assert plain.network_bytes == traced.network_bytes
        for task, timings in plain.collector.timings.items():
            got = traced.collector.timings[task]
            assert [repr(t.t3) for t in timings] == [repr(t.t3) for t in got]


# -- metadata ----------------------------------------------------------------------
class TestRunMetadata:
    def test_meta_filled_by_pipeline(self, traced_result):
        meta = traced_result.trace.meta
        assert meta["label"] == "obs-test [modeled]"
        assert meta["num_cpis"] == NUM_CPIS
        assert meta["makespan"] == traced_result.makespan
        ranks = meta["ranks"]
        assert len(ranks) == TINY_ASSIGNMENT.total_nodes
        assert any(name.startswith("doppler[") for name in ranks.values())
