"""The bottleneck report: span-derived numbers must match the pipeline's own."""

from __future__ import annotations

import json

import pytest

from repro import Assignment, STAPParams, STAPPipeline
from repro.core.assignment import TASK_NAMES
from repro.obs import build_report
from repro.scheduling.bottleneck import analyze_bottleneck

pytestmark = pytest.mark.obs

TINY_ASSIGNMENT = Assignment(3, 2, 2, 2, 2, 2, 2, name="report-test")
NUM_CPIS = 4


@pytest.fixture(scope="module")
def traced_result():
    return STAPPipeline(
        STAPParams.tiny(), TINY_ASSIGNMENT, num_cpis=NUM_CPIS, trace=True
    ).run()


@pytest.fixture(scope="module")
def report(traced_result):
    return build_report(traced_result.trace)


class TestAgreesWithPipelineMetrics:
    """The report is rebuilt from spans; it must agree with the collector."""

    def test_per_task_breakdown_matches(self, traced_result, report):
        assert set(report.tasks) == set(TASK_NAMES)
        for name, expected in traced_result.metrics.tasks.items():
            got = report.tasks[name]
            assert got.num_nodes == expected.num_nodes
            assert got.recv == pytest.approx(expected.recv, abs=1e-12)
            assert got.comp == pytest.approx(expected.comp, abs=1e-12)
            assert got.send == pytest.approx(expected.send, abs=1e-12)
            assert got.total == pytest.approx(expected.total, abs=1e-12)

    def test_throughput_and_latency_match(self, traced_result, report):
        metrics = traced_result.metrics
        assert report.metrics.measured_throughput == pytest.approx(
            metrics.measured_throughput, rel=1e-12
        )
        assert report.metrics.measured_latency == pytest.approx(
            metrics.measured_latency, rel=1e-12
        )

    def test_bottleneck_diagnosis_consistent(self, traced_result, report):
        independent = analyze_bottleneck(traced_result.metrics)
        assert report.diagnosis.bottleneck_task == independent.bottleneck_task
        assert 0.0 < report.bottleneck_utilization <= 1.0 + 1e-9


class TestEdgeTraffic:
    def test_all_bytes_accounted_for(self, traced_result, report):
        assert sum(e.nbytes for e in report.edges) == traced_result.network_bytes
        assert (
            sum(e.messages for e in report.edges)
            == traced_result.network_messages
        )

    def test_edges_are_pipeline_edges(self, report):
        from repro.core.redistribution import TAG_CODES

        for edge in report.edges:
            assert edge.edge in TAG_CODES or edge.edge == "(other)"
            assert edge.mean_seconds > 0.0

    def test_doppler_fanout_present(self, report):
        names = {e.edge for e in report.edges}
        assert any(name.startswith("dop_to_") for name in names)


class TestRendering:
    def test_text_report_content(self, report):
        text = report.text()
        assert "bottleneck report: report-test" in text
        assert "bottleneck stage utilization" in text
        for task in TASK_NAMES:
            assert task in text
        assert "edge" in text and "msgs" in text

    def test_hot_links_listed(self, report):
        # ENDPOINT contention (the default) holds inject/eject ports.
        assert report.hot_links
        text = report.text()
        assert "hottest interconnect resources" in text

    def test_to_dict_is_json_serializable(self, report):
        data = json.loads(json.dumps(report.to_dict()))
        assert data["label"].startswith("report-test")
        assert data["num_cpis"] == NUM_CPIS
        assert set(data["tasks"]) == set(TASK_NAMES)
        assert data["bottleneck"]["task"] in TASK_NAMES
        assert data["edges"]


class TestExplicitNumCpis:
    def test_override_matches_meta_default(self, traced_result):
        by_meta = build_report(traced_result.trace)
        explicit = build_report(traced_result.trace, num_cpis=NUM_CPIS)
        assert explicit.metrics.measured_latency == pytest.approx(
            by_meta.metrics.measured_latency
        )

    def test_top_links_limits_list(self, traced_result):
        limited = build_report(traced_result.trace, top_links=2)
        assert len(limited.hot_links) <= 2
