"""The live sweep dashboard: math, rendering, containment."""

from __future__ import annotations

import io
from types import SimpleNamespace

import pytest

from repro.obs.dashboard import SweepDashboard, _fmt_seconds, _trim, sparkline

pytestmark = [pytest.mark.obs, pytest.mark.metrics]


def outcome(cached=False, error=None, elapsed=0.0, comp=None):
    """Minimal stand-in for a PointOutcome."""
    result = None
    if comp is not None:
        result = SimpleNamespace(
            metrics=SimpleNamespace(
                tasks={task: SimpleNamespace(comp=seconds)
                       for task, seconds in comp.items()}
            )
        )
    return SimpleNamespace(
        cached=cached, error=error, elapsed=elapsed, result=result
    )


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def make_dash(**kwargs):
    clock = FakeClock()
    stream = io.StringIO()
    dash = SweepDashboard(stream=stream, min_interval=0.0, clock=clock,
                          **kwargs)
    return dash, clock, stream


class TestHelpers:
    def test_sparkline_scales_to_peak(self):
        line = sparkline([0, 1, 4, 8])
        assert len(line) == 4
        assert line[0] == " "      # empty bucket stays blank
        assert line[-1] == "█"     # peak bucket gets the tallest glyph
        assert sparkline([]) == ""
        assert sparkline([0, 0]) == ""

    def test_trim_drops_empty_edges(self):
        counts, bounds = _trim([0, 0, 3, 1, 0], (1, 2, 3, 4))
        assert counts == [3, 1]
        assert bounds == [3, 4]
        assert _trim([0, 0], (1,)) == ([], [])
        # A count in the overflow bucket keeps the +inf bound.
        counts, bounds = _trim([0, 2], (1,))
        assert counts == [2] and bounds == [float("inf")]

    def test_fmt_seconds(self):
        assert _fmt_seconds(5.0) == "5.0s"
        assert _fmt_seconds(90.0) == "1.5m"
        assert _fmt_seconds(7200.0) == "2.0h"
        assert _fmt_seconds(float("nan")) == "?"
        assert _fmt_seconds(float("inf")) == "?"


class TestAccounting:
    def test_counts_cached_errors_and_sim_time(self):
        dash, clock, _ = make_dash()
        dash(1, 4, outcome(cached=True))
        dash(2, 4, outcome(error="boom"))
        dash(3, 4, outcome(elapsed=2.5))
        assert dash.completed == 3 and dash.total == 4
        assert dash.cached == 1
        assert dash.errors == 1
        assert dash.sim_seconds == pytest.approx(2.5)
        assert dash.cache_hit_rate == pytest.approx(1 / 3)

    def test_rate_and_eta_from_injected_clock(self):
        dash, clock, _ = make_dash()
        dash(1, 10, outcome())       # starts the clock
        clock.now += 2.0
        dash(4, 10, outcome())
        assert dash.elapsed == pytest.approx(2.0)
        assert dash.points_per_second == pytest.approx(2.0)
        assert dash.eta_seconds == pytest.approx(3.0)

    def test_rate_is_nan_before_time_passes(self):
        dash, clock, _ = make_dash()
        dash(1, 2, outcome())
        assert dash.points_per_second != dash.points_per_second  # NaN
        assert "?" in dash.status_line()

    def test_stage_histograms_aggregate_over_points(self):
        dash, clock, _ = make_dash()
        dash(1, 2, outcome(comp={"doppler": 0.17, "cfar": 0.03}))
        dash(2, 2, outcome(comp={"doppler": 0.18, "cfar": 0.04}))
        snap = dash._stage_registry.snapshot()
        hist = snap.histogram("stage_comp_seconds", {"task": "doppler"})
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.35)

    def test_outcomes_without_metrics_are_fine(self):
        dash, clock, _ = make_dash()
        dash(1, 1, outcome())  # result=None: cache hits on traced sweeps etc.
        assert dash._stage_registry.snapshot().series() == []


class TestRendering:
    def test_status_line_contents(self):
        dash, clock, _ = make_dash(label="sweep:test")
        dash(1, 4, outcome(cached=True))
        clock.now += 1.0
        dash(2, 4, outcome())
        line = dash.status_line()
        assert line.startswith("sweep:test [##########----------]")
        assert "2/4" in line and "50%" in line
        assert "2.0 pts/s" in line
        assert "hits  50%" in line
        assert "err 0" in line
        assert "ETA 1.0s" in line

    def test_non_tty_stream_gets_plain_lines(self):
        dash, clock, stream = make_dash()
        dash(1, 2, outcome())
        dash(2, 2, outcome())
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "\r" not in stream.getvalue()

    def test_rate_limit_skips_intermediate_renders(self):
        clock = FakeClock()
        stream = io.StringIO()
        dash = SweepDashboard(stream=stream, min_interval=10.0, clock=clock)
        dash(1, 3, outcome())   # first render (last_render = -inf)
        dash(2, 3, outcome())   # suppressed: within min_interval
        dash(3, 3, outcome())   # final point always renders
        assert len(stream.getvalue().splitlines()) == 2

    def test_broken_stream_is_swallowed(self):
        class Broken(io.StringIO):
            def write(self, *_):
                raise OSError("terminal went away")

        clock = FakeClock()
        dash = SweepDashboard(stream=Broken(), min_interval=0.0, clock=clock)
        dash(1, 1, outcome())  # must not raise
        assert dash.completed == 1

    def test_tty_stream_redraws_in_place(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        clock = FakeClock()
        stream = Tty()
        dash = SweepDashboard(stream=stream, min_interval=0.0, clock=clock)
        dash(1, 2, outcome())
        dash(2, 2, outcome())
        text = stream.getvalue()
        assert text.count("\r") == 2
        assert text.endswith("\n")  # newline only once finished


class TestSummary:
    def test_summary_block(self):
        dash, clock, _ = make_dash(label="demo")
        dash(1, 3, outcome(cached=True))
        clock.now += 2.0
        dash(2, 3, outcome(elapsed=1.5, comp={"doppler": 0.17}))
        clock.now += 2.0
        dash(3, 3, outcome(error="x"))
        text = dash.summary()
        assert "--- demo dashboard" in text
        assert "points      3/3  (1 cached, 1 errors)" in text
        assert "4.0s" in text and "0.75 pts/s" in text
        assert "1.5 s simulating" in text
        assert "doppler" in text
        assert "ms mean" in text

    def test_summary_without_stage_data(self):
        dash, clock, _ = make_dash()
        dash(1, 1, outcome())
        text = dash.summary()
        assert "points      1/1" in text
        assert "stage comp seconds" not in text


class TestStoreFallback:
    """seed_progress / from_store: the disk-only path behind
    ``repro-stap campaign status``."""

    @staticmethod
    def progress(total=5, complete=3, stage_comp=None, span_seconds=0.0):
        from repro.exec.campaign import CampaignProgress

        return CampaignProgress(
            name="fall",
            total=total,
            complete=complete,
            stage_comp=stage_comp or {},
            span_seconds=span_seconds,
        )

    def test_seed_adopts_store_figures(self):
        dash, clock, _ = make_dash()
        dash.seed_progress(self.progress(span_seconds=6.0))
        assert (dash.completed, dash.total) == (3, 5)
        # Store-served points count as cached from this observer's view.
        assert dash.cached == 3
        assert dash.cache_hit_rate == 1.0
        assert dash.points_per_second == pytest.approx(0.5)
        assert dash.eta_seconds == pytest.approx(4.0)

    def test_zero_span_renders_unknown_rate_not_garbage(self):
        dash, clock, _ = make_dash()
        dash.seed_progress(self.progress(complete=1, span_seconds=0.0))
        assert dash.points_per_second != dash.points_per_second  # NaN
        assert "    ? pts/s" in dash.status_line()
        assert "? pts/s" in dash.summary()
        assert "ETA ?" in dash.status_line()

    def test_stage_histograms_rebuilt_from_store(self):
        dash, _, _ = make_dash()
        dash.seed_progress(
            self.progress(stage_comp={"doppler": [0.2, 0.3], "cfar": [0.1]})
        )
        text = dash.summary()
        assert "doppler" in text and "cfar" in text
        assert "250.0 ms mean" in text

    def test_reseed_replaces_rather_than_accumulates(self):
        dash, _, _ = make_dash()
        dash.seed_progress(self.progress(stage_comp={"doppler": [0.2]}))
        dash.seed_progress(
            self.progress(complete=4, stage_comp={"doppler": [0.2]})
        )
        assert dash.completed == 4 and dash.cached == 4
        snap = dash._stage_registry.snapshot()
        hist = snap.histogram("stage_comp_seconds", {"task": "doppler"})
        assert hist["count"] == 1  # not 2: the re-seed replaced the state

    def test_from_store_reads_a_real_campaign_directory(self, tmp_path):
        from repro import Assignment, STAPParams
        from repro.exec import Campaign, CampaignStore, SimPoint

        points = [
            SimPoint(
                STAPParams.tiny(),
                Assignment(2, 1, 2, 1, 1, 1, 1, name=f"d{i}"),
                num_cpis=3 + i,
            )
            for i in range(2)
        ]
        Campaign(points, store=CampaignStore(tmp_path, name="disk")).run(
            limit=1
        )
        dash = SweepDashboard.from_store(tmp_path, stream=io.StringIO())
        assert dash.label == "campaign:disk"
        assert (dash.completed, dash.total) == (1, 2)
        assert "doppler" in dash.summary()
