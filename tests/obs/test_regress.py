"""The regression gate: direction inference, tolerance, CLI exit codes."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.regress import (
    compare,
    compare_files,
    direction_of,
    flatten,
    main,
)

pytestmark = [pytest.mark.obs, pytest.mark.metrics]

BASELINE = {
    "case3": {
        "events_per_second": 100_000.0,
        "wall_seconds": 2.0,
        "makespan": 0.4831,
        "nodes": 59,
    },
}


def scaled(doc, key, factor):
    out = json.loads(json.dumps(doc))
    out["case3"][key] = out["case3"][key] * factor
    return out


class TestDirection:
    def test_rule_order_resolves_composite_names(self):
        # "events_per_second" contains "seconds" too; per_second wins.
        assert direction_of("case3.events_per_second") == "higher"
        assert direction_of("case3.wall_seconds") == "lower"
        assert direction_of("sweep.cache_hit_rate") == "higher"
        assert direction_of("net_link_wait_seconds_total.value") == "lower"

    def test_unknown_names_are_informational(self):
        assert direction_of("case3.makespan") is None

    def test_series_key_carries_the_direction(self):
        # Metrics snapshots put the telling name in the series, leaf is
        # "value" — full-path matching still classifies it.
        assert direction_of(
            'counters.pipeline_throughput_total{case="1"}.value'
        ) == "higher"


class TestFlatten:
    def test_nested_and_indexed_paths(self):
        flat = flatten({"a": {"b": 1, "runs": [{"wall": 2.5}]}, "ok": True})
        assert flat == {"a.b": 1.0, "a.runs.0.wall": 2.5}

    def test_non_finite_leaves_skipped(self):
        assert flatten({"x": float("nan"), "y": float("inf"), "z": 3}) == {
            "z": 3.0
        }


class TestCompare:
    def test_identical_inputs_pass(self):
        report = compare(BASELINE, BASELINE, tolerance=0.10)
        assert report.ok
        assert not report.regressions
        assert "ok:" in report.summary()

    def test_injected_throughput_regression_flagged(self):
        """Acceptance: a 20% throughput drop fails a 10% gate."""
        report = compare(BASELINE, scaled(BASELINE, "events_per_second", 0.8),
                         tolerance=0.10)
        assert not report.ok
        (delta,) = report.regressions
        assert delta.path == "case3.events_per_second"
        assert delta.change == pytest.approx(-0.20)
        assert "REGRESSION" in report.summary()
        assert "FAIL" in report.table()

    def test_throughput_gain_is_improvement_not_regression(self):
        report = compare(BASELINE, scaled(BASELINE, "events_per_second", 1.2))
        assert report.ok
        delta = next(d for d in report.deltas
                     if d.path == "case3.events_per_second")
        assert delta.improved

    def test_lower_is_better_direction(self):
        slower = compare(BASELINE, scaled(BASELINE, "wall_seconds", 1.25))
        assert [d.path for d in slower.regressions] == ["case3.wall_seconds"]
        faster = compare(BASELINE, scaled(BASELINE, "wall_seconds", 0.5))
        assert faster.ok

    def test_within_tolerance_passes(self):
        report = compare(BASELINE, scaled(BASELINE, "events_per_second", 0.95),
                         tolerance=0.10)
        assert report.ok

    def test_unknown_direction_never_fails(self):
        report = compare(BASELINE, scaled(BASELINE, "makespan", 10.0))
        assert report.ok
        delta = next(d for d in report.deltas if d.path == "case3.makespan")
        assert delta.direction is None and not delta.regressed
        assert "  --" in delta.row()

    def test_identifier_leaves_excluded(self):
        current = json.loads(json.dumps(BASELINE))
        current["case3"]["nodes"] = 118  # identifier, not a measurement
        report = compare(BASELINE, current)
        assert report.ok
        assert all(d.path != "case3.nodes" for d in report.deltas)

    def test_zero_baseline_is_informational(self):
        report = compare({"errors_total": 0.0}, {"errors_total": 5.0})
        assert report.ok  # inf change can't be judged against a tolerance
        (delta,) = report.deltas
        assert math.isinf(delta.change) and not delta.regressed
        assert "new" in delta.row()

    def test_added_and_removed_paths_reported(self):
        report = compare({"a": 1.0, "b": 2.0}, {"a": 1.0, "c": 3.0})
        assert report.only_baseline == ["b"]
        assert report.only_current == ["c"]
        assert "+1 new metric(s)" in report.table()
        assert "-1 removed metric(s)" in report.table()

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare(BASELINE, BASELINE, tolerance=-0.1)

    def test_gates_a_metrics_snapshot(self):
        """The same gate works on MetricsSnapshot.to_dict() documents."""
        from repro.obs.metrics import MetricsRegistry

        def snap(rate):
            reg = MetricsRegistry()
            reg.enable()
            reg.counter("sim_events_per_second_total").inc(rate)
            reg.gauge("des_heap_depth_peak").set(40.0)
            return reg.snapshot().to_dict()

        report = compare(snap(1000.0), snap(700.0), tolerance=0.10)
        assert len(report.regressions) == 1
        assert "sim_events_per_second_total" in report.regressions[0].path


class TestCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_exit_zero_on_identical(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", BASELINE)
        assert main([base, base]) == 0
        out = capsys.readouterr().out
        assert "ok:" in out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", BASELINE)
        curr = self._write(tmp_path, "curr.json",
                           scaled(BASELINE, "events_per_second", 0.8))
        assert main([base, curr, "--tolerance", "0.10"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "REGRESSION" in out

    def test_exit_two_on_bad_input(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        base = self._write(tmp_path, "base.json", BASELINE)
        assert main([missing, base]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main([base, str(bad)]) == 2
        assert "regress:" in capsys.readouterr().err

    def test_all_flag_lists_unchanged(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", BASELINE)
        main([base, base, "--all"])
        out = capsys.readouterr().out
        assert "events_per_second" in out
        main([base, base])
        assert "(no changed metrics)" in capsys.readouterr().out

    def test_compare_files_round_trip(self, tmp_path):
        base = self._write(tmp_path, "base.json", BASELINE)
        curr = self._write(tmp_path, "curr.json",
                           scaled(BASELINE, "wall_seconds", 2.0))
        report = compare_files(base, curr, tolerance=0.10)
        assert [d.path for d in report.regressions] == ["case3.wall_seconds"]
