"""Chrome-trace/Perfetto export: valid JSON, monotone tracks, metadata."""

from __future__ import annotations

import json
import math

import pytest

from repro import Assignment, STAPParams, STAPPipeline
from repro.obs import TraceSink, chrome_trace, write_chrome_trace

pytestmark = pytest.mark.obs

TINY_ASSIGNMENT = Assignment(3, 2, 2, 2, 2, 2, 2, name="export-test")


@pytest.fixture(scope="module")
def traced():
    pipeline = STAPPipeline(
        STAPParams.tiny(), TINY_ASSIGNMENT, num_cpis=2, trace=True
    )
    result = pipeline.run()
    return pipeline, result


@pytest.fixture(scope="module")
def doc(traced) -> dict:
    pipeline, result = traced
    rendered = chrome_trace(result.trace, mesh=pipeline.machine.mesh)
    # Round-trip through the serializer: the export must be plain JSON
    # (no NaN/Infinity, which Perfetto's strict parser rejects).
    return json.loads(json.dumps(rendered, allow_nan=False))


class TestDocumentShape:
    def test_top_level_keys(self, doc):
        assert set(doc) >= {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["traceEvents"]

    def test_other_data_carries_run_metadata(self, traced, doc):
        _, result = traced
        other = doc["otherData"]
        assert other["label"].startswith("export-test")
        assert other["num_cpis"] == 2
        assert other["makespan_s"] == pytest.approx(result.makespan)
        assert other["dropped_spans"] == 0
        assert other["dropped_messages"] == 0

    def test_event_phases_are_known(self, doc):
        assert {e["ph"] for e in doc["traceEvents"]} <= {"M", "X", "b", "e"}


class TestTracks:
    def test_process_names_for_all_three_groups(self, doc):
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"ranks", "network", "messages"}

    def test_every_rank_track_is_named_after_its_task(self, traced, doc):
        _, result = traced
        rank_tracks = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == 1
        }
        assert len(rank_tracks) == TINY_ASSIGNMENT.total_nodes
        expected = result.trace.meta["ranks"]
        for tid, label in rank_tracks.items():
            assert label.startswith(expected[tid])

    def test_timestamps_monotone_per_track(self, doc):
        last: dict = {}
        for event in doc["traceEvents"]:
            if event["ph"] == "M":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(key, -math.inf)
            last[key] = event["ts"]

    def test_durations_non_negative(self, doc):
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                assert event["dur"] >= 0.0

    def test_span_events_cover_all_phases(self, doc):
        names = {
            e["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["pid"] == 1
        }
        for phase in ("iteration", "recv", "comp", "send"):
            assert f"doppler:{phase}" in names
        # Weight spans are categorized off the latency path.
        cats = {
            e["name"]: e["cat"]
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["pid"] == 1
        }
        assert cats["easy_weight:comp"] == "weight"
        assert cats["doppler:comp"] == "task"

    def test_message_events_pair_up(self, doc):
        begins = [e for e in doc["traceEvents"] if e["ph"] == "b"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "e"]
        assert begins and len(begins) == len(ends)
        by_id = {e["id"]: e["ts"] for e in begins}
        for end in ends:
            assert end["ts"] >= by_id[end["id"]]
        # Edge labels resolve through the tag codec.
        assert any("doppler->" in e["name"] or "cpi=" in e["name"]
                   for e in begins)

    def test_network_tracks_present(self, doc):
        link_events = [
            e for e in doc["traceEvents"] if e["ph"] == "X" and e["pid"] == 2
        ]
        assert link_events
        for event in link_events:
            assert event["args"]["bytes"] > 0


class TestWriteChromeTrace:
    def test_writes_loadable_json(self, traced, tmp_path):
        pipeline, result = traced
        path = write_chrome_trace(
            result.trace, tmp_path / "timeline.json", mesh=pipeline.machine.mesh
        )
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]

    def test_in_flight_messages_are_skipped(self):
        sink = TraceSink()
        sink.new_message(0, 1, 5, 64, 0.0)  # never matched nor delivered
        doc = chrome_trace(sink)
        assert not [e for e in doc["traceEvents"] if e["ph"] in ("b", "e")]
        json.dumps(doc, allow_nan=False)  # still strictly valid JSON
