"""Campaign metrics: instruments, snapshot/merge, export, bit-identity."""

from __future__ import annotations

import json

import pytest

from repro import (
    CASE1,
    Assignment,
    CPIStream,
    RadarScenario,
    STAPParams,
    STAPPipeline,
    TargetTruth,
)
from repro.exec import ResultCache, SimPoint, run_points
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    SECONDS_BUCKETS,
    metrics_registry,
    series_name,
    to_prometheus,
    write_snapshot,
)

pytestmark = [pytest.mark.obs, pytest.mark.metrics]

TINY = STAPParams.tiny()
TINY_ASSIGNMENT = Assignment(2, 1, 2, 1, 1, 1, 1, name="metrics-test")


@pytest.fixture(autouse=True)
def _global_registry_off():
    """Tests that enable the process registry must not leak state."""
    yield
    metrics_registry.disable()
    metrics_registry.reset()


def run_tiny(num_cpis=3):
    return STAPPipeline(TINY, TINY_ASSIGNMENT, num_cpis=num_cpis).run()


class TestInstruments:
    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        gauge = reg.gauge("g")
        hist = reg.histogram("h")
        counter.inc(5)
        gauge.set(3.0)
        hist.observe(0.1)
        assert counter.value == 0.0
        assert gauge.value == 0.0
        assert hist.count == 0

    def test_counter_is_monotonic(self):
        reg = MetricsRegistry()
        reg.enable()
        counter = reg.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_high_water(self):
        reg = MetricsRegistry()
        reg.enable()
        gauge = reg.gauge("g")
        gauge.set(5.0)
        gauge.set_max(3.0)
        assert gauge.value == 5.0
        gauge.set_max(9.0)
        assert gauge.value == 9.0

    def test_histogram_buckets_and_mean(self):
        reg = MetricsRegistry()
        reg.enable()
        hist = reg.histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            hist.observe(v)
        # Inclusive upper bounds: 1.0 lands in the first bucket.
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.mean == pytest.approx(106.5 / 4)

    def test_histogram_rejects_unsorted_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(2.0, 1.0))

    def test_registration_is_idempotent_but_type_checked(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", labels={"a": "1"}) is not reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(1.0,))
            reg.histogram("h", buckets=(2.0,))

    def test_series_name_is_stable(self):
        assert series_name("m") == "m"
        assert (series_name("m", {"b": "2", "a": "1"})
                == 'm{a="1",b="2"}')


class TestSnapshotAndMerge:
    def _loaded(self):
        reg = MetricsRegistry()
        reg.enable()
        reg.counter("c", labels={"k": "v"}).inc(3)
        reg.gauge("g").set(7.0)
        hist = reg.histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        return reg

    def test_snapshot_round_trips_through_json(self):
        snap = self._loaded().snapshot()
        rebuilt = MetricsSnapshot.from_dict(json.loads(snap.to_json()))
        assert rebuilt == snap
        assert rebuilt.value("c", {"k": "v"}) == 3
        assert rebuilt.value("g") == 7.0
        assert rebuilt.histogram("h")["counts"] == [1, 1, 0]

    def test_from_dict_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            MetricsSnapshot.from_dict({"schema": "other/9"})

    def test_merge_sums_maxes_and_adds_buckets(self):
        reg = self._loaded()
        reg.merge(self._loaded().snapshot())
        snap = reg.snapshot()
        assert snap.value("c", {"k": "v"}) == 6  # counters sum
        assert snap.value("g") == 7.0            # gauges take the max
        hist = snap.histogram("h")
        assert hist["counts"] == [2, 2, 0]       # buckets add
        assert hist["count"] == 4

    def test_merge_into_empty_registry_reproduces_snapshot(self):
        snap = self._loaded().snapshot()
        reg = MetricsRegistry()
        reg.merge(snap)  # disabled registry still aggregates
        assert reg.snapshot() == snap

    def test_merge_rejects_mismatched_bucket_bounds(self):
        reg = MetricsRegistry()
        reg.enable()
        reg.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        other = MetricsRegistry()
        other.enable()
        other.histogram("h", buckets=(5.0, 6.0)).observe(0.5)
        with pytest.raises(ValueError, match="bounds"):
            reg.merge(other.snapshot())

    def test_collect_context_restores_enabled_state(self):
        reg = MetricsRegistry()
        with reg.collect():
            assert reg.enabled
            reg.counter("c").inc()
        assert not reg.enabled
        assert reg.snapshot().value("c") == 1


class TestExport:
    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.enable()
        reg.counter("runs_total", "completed runs").inc(2)
        hist = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = to_prometheus(reg.snapshot())
        assert "# TYPE runs_total counter" in text
        assert "runs_total 2" in text
        # Cumulative buckets plus the implicit +Inf.
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1.0"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text

    def test_write_snapshot_formats(self, tmp_path):
        reg = MetricsRegistry()
        reg.enable()
        reg.counter("c").inc()
        snap = reg.snapshot()
        json_path = write_snapshot(snap, tmp_path / "m.json")
        assert MetricsSnapshot.from_dict(
            json.loads(json_path.read_text())
        ) == snap
        prom_path = write_snapshot(snap, tmp_path / "m.prom", format="prom")
        assert "# TYPE c counter" in prom_path.read_text()
        with pytest.raises(ValueError, match="format"):
            write_snapshot(snap, tmp_path / "m.x", format="xml")


class TestPipelineFlush:
    def test_modeled_run_records_expected_series(self):
        metrics_registry.enable(reset=True)
        run_tiny()
        snap = metrics_registry.snapshot()
        assert snap.value("pipeline_runs_total") == 1
        assert snap.value("des_events_total", {"backend": "python"}) > 0
        assert snap.value("des_heap_depth_peak") > 0
        assert snap.value("mpi_sends_total") == snap.value("mpi_recvs_total") > 0
        assert snap.value("net_messages_total") > 0
        assert snap.histogram("pipeline_makespan_seconds")["count"] == 1
        for task in ("doppler", "cfar"):
            hist = snap.histogram("stage_comp_seconds", {"task": task})
            assert hist is not None and hist["count"] == 1
            assert hist["bounds"] == list(SECONDS_BUCKETS)
        # The pipeline posts no wildcard receives.
        assert snap.value("mpi_wildcard_recvs_total") == 0

    def test_two_runs_accumulate(self):
        metrics_registry.enable(reset=True)
        run_tiny()
        events_one = metrics_registry.snapshot().value(
            "des_events_total", {"backend": "python"}
        )
        run_tiny()
        snap = metrics_registry.snapshot()
        assert snap.value("pipeline_runs_total") == 2
        assert snap.value(
            "des_events_total", {"backend": "python"}
        ) == 2 * events_one

    def test_metered_case1_is_bit_identical(self):
        """Acceptance: Table 7 case 1 output unchanged by metrics."""
        def run():
            return STAPPipeline(STAPParams.paper(), CASE1, num_cpis=3).run()

        plain = run()
        metrics_registry.enable(reset=True)
        metered = run()
        assert repr(metered.makespan) == repr(plain.makespan)
        assert metered.network_messages == plain.network_messages
        assert metered.network_bytes == plain.network_bytes
        for task in plain.metrics.tasks:
            assert repr(metered.metrics.tasks[task]) == repr(
                plain.metrics.tasks[task]
            )

    def test_metered_functional_detections_identical(self):
        """Acceptance: functional-pipeline detections unchanged by metrics."""
        scenario = RadarScenario(
            clutter_to_noise_db=40.0,
            targets=(
                TargetTruth(range_cell=20, normalized_doppler=0.25,
                            angle_deg=0.0, snr_db=5.0),
            ),
            seed=11,
        )

        def run():
            return STAPPipeline(
                TINY,
                Assignment(3, 2, 2, 2, 2, 2, 2, name="metered-functional"),
                mode="functional",
                stream=CPIStream(TINY, scenario),
                num_cpis=4,
            ).run()

        plain = run()
        metrics_registry.enable(reset=True)
        metered = run()
        assert repr(metered.makespan) == repr(plain.makespan)
        assert [
            (r.cpi_index, repr(r.completed_at), r.detections)
            for r in metered.reports
        ] == [
            (r.cpi_index, repr(r.completed_at), r.detections)
            for r in plain.reports
        ]


class TestWorkerMerge:
    def _points(self):
        return [
            SimPoint(TINY, Assignment(2, 1, 2, 1, 1, 1, 1, name=f"wm{c}"),
                     num_cpis=c)
            for c in (3, 4, 5)
        ]

    def test_parallel_merge_equals_serial_registry(self):
        """Acceptance: jobs>1 merged snapshot == serial run's registry."""
        metrics_registry.enable(reset=True)
        run_points(self._points(), jobs=1, cache=None)
        serial = metrics_registry.snapshot()

        metrics_registry.enable(reset=True)
        outcomes = run_points(self._points(), jobs=2, cache=None)
        parallel = metrics_registry.snapshot()

        # Worker snapshots were shipped and attached per point.
        assert all(o.metrics is not None for o in outcomes if not o.cached)
        # Virtual-time metrics are deterministic, so every counter, gauge
        # and histogram matches exactly — except host-time kernel seconds,
        # which are wall measurements (absent here: modeled mode runs no
        # kernels).
        assert parallel.series() == serial.series()
        assert parallel.data["counters"] == serial.data["counters"]
        assert parallel.data["gauges"] == serial.data["gauges"]
        for series, entry in serial.data["histograms"].items():
            got = parallel.data["histograms"][series]
            if "exec_point_seconds" in series:
                assert got["counts"] != [] and got["count"] == entry["count"]
            else:
                assert got == entry, series

    def test_serial_outcomes_carry_no_snapshot(self):
        metrics_registry.enable(reset=True)
        outcomes = run_points(self._points(), jobs=1, cache=None)
        assert all(o.metrics is None for o in outcomes)

    def test_cached_points_count_in_parent(self):
        metrics_registry.enable(reset=True)
        cache = ResultCache()
        run_points(self._points(), jobs=1, cache=cache)
        run_points(self._points(), jobs=2, cache=cache)
        snap = metrics_registry.snapshot()
        assert snap.value("exec_points_total", {"status": "simulated"}) == 3
        assert snap.value("exec_points_total", {"status": "cached"}) == 3
        assert snap.value("exec_cache_hits_total", {"layer": "memory"}) == 3

    def test_metrics_off_ships_nothing(self):
        outcomes = run_points(self._points(), jobs=2, cache=None)
        assert all(o.metrics is None for o in outcomes)
        assert metrics_registry.snapshot().series() == []
