"""The repro.perf package: counters, reports, profiling harness."""

from __future__ import annotations

import pytest

from repro import Assignment, STAPParams, STAPPipeline
from repro.des import Simulator
from repro.machine import afrl_paragon
from repro.mpi import World
from repro.perf import PerfReport, profile_run, snapshot_counters

TINY_ASSIGNMENT = Assignment(3, 2, 2, 2, 2, 2, 2, name="perf-test")


def run_tiny(perf: bool):
    return STAPPipeline(
        STAPParams.tiny(), TINY_ASSIGNMENT, num_cpis=3, perf=perf
    ).run()


class TestCounters:
    def test_simulator_counts_processed_events(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)

        sim.process(proc())
        sim.run()
        # Start event + two timeouts at minimum; exact count is an engine
        # detail, monotonicity and non-zero are the contract.
        assert sim.events_processed >= 3

    def test_world_counts_operations_and_probes(self):
        sim = Simulator()
        world = World(sim, afrl_paragon(), num_ranks=2, contention="none")

        def sender(ctx):
            yield ctx.isend(b"x", dest=1, tag=7, nbytes=64)

        def receiver(ctx):
            yield ctx.irecv(source=0, tag=7)

        world.spawn(0, sender)
        world.spawn(1, receiver)
        sim.run()
        assert world.sends_posted == 1
        assert world.recvs_posted == 1
        # Indexed matching: at most one probe per side of the match.
        assert 0 <= world.match_probes <= 2

    def test_snapshot_counters_shape(self):
        sim = Simulator()
        world = World(sim, afrl_paragon(), num_ranks=2)
        snap = snapshot_counters(sim, world)
        assert set(snap) == {
            "events_processed",
            "match_probes",
            "sends_posted",
            "recvs_posted",
            "wildcard_recvs",
            "wildcard_hits",
            "network_messages",
            "network_bytes",
            "backend",
            "plan_build_seconds",
        }
        # Counters start at zero; the meta keys identify the run instead.
        assert all(
            v == 0
            for k, v in snap.items()
            if k not in ("backend", "plan_build_seconds")
        )
        assert snap["backend"] == "python"
        assert snap["plan_build_seconds"] == 0.0
        # Simulator-only snapshot still carries every key.
        assert set(snapshot_counters(sim)) == set(snap)


class TestPerfReport:
    def test_derived_rates(self):
        report = PerfReport(
            wall_seconds=2.0,
            sim_seconds=10.0,
            num_cpis=4,
            events_processed=1000,
            match_probes=30,
            sends_posted=10,
            recvs_posted=10,
            network_messages=10,
            network_bytes=1 << 20,
        )
        assert report.events_per_second == pytest.approx(500.0)
        assert report.probes_per_message == pytest.approx(1.5)
        assert report.wall_seconds_per_cpi == pytest.approx(0.5)

    def test_zero_denominators_do_not_raise(self):
        report = PerfReport(
            wall_seconds=0.0, sim_seconds=0.0, num_cpis=0, events_processed=0
        )
        assert report.events_per_second == 0.0
        assert report.probes_per_message == 0.0
        assert report.wall_seconds_per_cpi == 0.0

    def test_from_snapshots_takes_deltas(self):
        before = dict(
            events_processed=100,
            match_probes=5,
            sends_posted=3,
            recvs_posted=3,
            network_messages=3,
            network_bytes=300,
        )
        after = dict(
            events_processed=250,
            match_probes=9,
            sends_posted=7,
            recvs_posted=7,
            network_messages=7,
            network_bytes=900,
        )
        report = PerfReport.from_snapshots(
            before, after, wall_seconds=1.0, sim_seconds=2.0, num_cpis=2, label="x"
        )
        assert report.events_processed == 150
        assert report.match_probes == 4
        assert report.network_bytes == 600
        assert report.label == "x"

    def test_to_dict_and_summary(self):
        report = PerfReport(
            wall_seconds=1.0,
            sim_seconds=2.0,
            num_cpis=5,
            events_processed=100,
            sends_posted=4,
            recvs_posted=4,
            match_probes=4,
            network_messages=4,
            network_bytes=4096,
            label="unit",
        )
        data = report.to_dict()
        assert data["label"] == "unit"
        assert data["events_per_second"] == pytest.approx(100.0)
        text = report.summary()
        assert "events/s" in text
        assert "probes/op" in text

    def test_counters_dict_has_every_registered_counter(self):
        report = PerfReport(
            wall_seconds=1.0, sim_seconds=2.0, num_cpis=5, events_processed=100
        )
        counters = report.counters_dict()
        assert set(counters) == {
            "events_processed",
            "match_probes",
            "sends_posted",
            "recvs_posted",
            "wildcard_recvs",
            "wildcard_hits",
            "network_messages",
            "network_bytes",
        }
        # Zero-valued counters are present, not omitted: a missing key would
        # make a before/after diff read as "unchanged".
        assert counters["network_messages"] == 0
        assert counters["events_processed"] == 100
        # No derived rates leak into the raw-counter view.
        assert "events_per_second" not in counters

    def test_summary_prints_zero_counters(self):
        report = PerfReport(
            wall_seconds=1.0, sim_seconds=2.0, num_cpis=5, events_processed=100
        )
        text = report.summary()
        assert "p2p ops posted" in text
        assert "network messages" in text

    def test_from_dict_round_trips_to_dict(self):
        report = PerfReport(
            wall_seconds=1.5, sim_seconds=3.0, num_cpis=5,
            events_processed=1234, match_probes=40, sends_posted=20,
            recvs_posted=20, wildcard_recvs=2, wildcard_hits=1,
            network_messages=20, network_bytes=4096, backend="lowered",
            plan_build_seconds=0.01, label="rt",
            extras={"annotation": 7.0},
        )
        data = report.to_dict()
        rebuilt = PerfReport.from_dict(data)
        assert rebuilt.to_dict() == data
        assert rebuilt.label == "rt"
        assert rebuilt.backend == "lowered"
        assert rebuilt.extras == {"annotation": 7.0}
        # Derived rates are recomputed, never stored stale.
        assert rebuilt.events_per_second == report.events_per_second

    def test_from_dict_keeps_unknown_keys_as_extras(self):
        report = PerfReport(
            wall_seconds=1.0, sim_seconds=2.0, num_cpis=5, events_processed=10
        )
        data = report.to_dict()
        data["case"] = "case3"
        data["nodes"] = 59
        rebuilt = PerfReport.from_dict(data)
        assert rebuilt.extras == {"case": "case3", "nodes": 59}
        assert rebuilt.to_dict() == data


class TestExecCounters:
    def test_inc_is_thread_safe(self):
        """Concurrent inc() calls must not drop increments."""
        import threading

        from repro.perf.counters import ExecCounters

        counters = ExecCounters()
        per_thread, num_threads = 2000, 8

        def hammer():
            for _ in range(per_thread):
                counters.inc("points_submitted")

        threads = [threading.Thread(target=hammer) for _ in range(num_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counters.points_submitted == per_thread * num_threads

    def test_snapshot_reset_and_delta(self):
        from repro.perf.counters import ExecCounters

        counters = ExecCounters()
        counters.inc("cache_corrupt", 3)
        counters.inc("progress_errors")
        snap = counters.snapshot()
        assert snap["cache_corrupt"] == 3
        assert snap["progress_errors"] == 1
        # The lock is an implementation detail, not a counter.
        assert "_lock" not in snap and "_names" not in snap
        counters.inc("cache_corrupt", 2)
        assert counters.delta_since(snap)["cache_corrupt"] == 2
        counters.reset()
        assert all(v == 0 for v in counters.snapshot().values())


class TestPipelineWiring:
    def test_perf_off_by_default(self):
        result = run_tiny(perf=False)
        assert result.perf is None

    def test_perf_report_attached_and_consistent(self):
        result = run_tiny(perf=True)
        perf = result.perf
        assert perf is not None
        assert perf.wall_seconds > 0.0
        assert perf.sim_seconds == pytest.approx(result.makespan)
        assert perf.num_cpis == 3
        assert perf.events_processed > 0
        assert perf.sends_posted == perf.recvs_posted > 0
        assert perf.network_messages == result.network_messages
        assert perf.network_bytes == result.network_bytes
        # The indexed matcher's target: ~1 probe per posted operation.
        assert perf.probes_per_message < 2.0

    def test_perf_run_results_identical_to_plain_run(self):
        """Instrumentation must not perturb the simulation."""
        plain = run_tiny(perf=False)
        instrumented = run_tiny(perf=True)
        assert repr(plain.makespan) == repr(instrumented.makespan)
        assert plain.network_messages == instrumented.network_messages


class TestProfileRun:
    def test_returns_result_and_stats(self):
        result, stats = profile_run(run_tiny, False, limit=5)
        assert result.perf is None
        assert result.makespan > 0.0
        assert "function calls" in stats

    def test_propagates_exceptions(self):
        def boom():
            raise ValueError("no")

        with pytest.raises(ValueError):
            profile_run(boom)
