"""Kernel counters: opt-in timing/flops accounting for the STAP kernels."""

import pytest

from repro.perf import KernelCounters, achieved_vs_table1, kernel_counters
from repro.radar import CPIStream, RadarScenario, STAPParams
from repro.stap.flops import PAPER_TABLE1, doppler_flops
from repro.stap.reference import SequentialSTAP


def cubes(params, count):
    return CPIStream(params, RadarScenario(seed=7)).take(count)


@pytest.fixture(autouse=True)
def restore_singleton():
    yield
    kernel_counters.disable()
    kernel_counters.reset()


class TestCounterMechanics:
    def test_disabled_by_default_records_nothing(self):
        counters = KernelCounters()
        assert not counters.enabled
        with counters.timed("doppler", 100.0):
            pass
        assert counters.stats() == {}

    def test_record_accumulates(self):
        counters = KernelCounters()
        counters.enable()
        counters.record("doppler", 0.5, 100.0)
        counters.record("doppler", 0.5, 300.0)
        stats = counters.stats()["doppler"]
        assert stats.calls == 2
        assert stats.seconds == pytest.approx(1.0)
        assert stats.flops == pytest.approx(400.0)
        assert stats.flops_per_second == pytest.approx(400.0)

    def test_collect_restores_prior_state(self):
        counters = KernelCounters()
        with counters.collect():
            assert counters.enabled
            counters.record("cfar", 1.0, 10.0)
        assert not counters.enabled
        # Stats survive past the block for post-hoc reporting.
        assert counters.stats()["cfar"].flops == pytest.approx(10.0)

    def test_collect_nested_keeps_outer_enabled(self):
        counters = KernelCounters()
        counters.enable()
        with counters.collect():
            pass
        assert counters.enabled

    def test_summary_lists_kernels(self):
        counters = KernelCounters()
        counters.enable()
        counters.record("doppler", 0.25, 1e6)
        text = counters.summary()
        assert "doppler" in text
        assert "total" in text


class TestInstrumentedKernels:
    def test_reference_run_populates_all_kernels(self):
        params = STAPParams.tiny()
        ref = SequentialSTAP(params)
        with kernel_counters.collect():
            for cube in cubes(params, 2):
                ref.process(cube)
        stats = kernel_counters.stats()
        for kernel in ("doppler", "easy_weight", "hard_weight",
                       "easy_beamform", "hard_beamform", "pulse_compression",
                       "cfar"):
            assert kernel in stats, f"kernel {kernel!r} never recorded"
            assert stats[kernel].seconds > 0.0
            assert stats[kernel].flops > 0.0

    def test_doppler_flops_credit_matches_table(self):
        params = STAPParams.tiny()
        ref = SequentialSTAP(params)
        with kernel_counters.collect():
            ref.process(cubes(params, 1)[0])
        stats = kernel_counters.stats()
        # One full CPI: the doppler kernel is credited exactly the analytic
        # per-CPI count (all range rows processed once).
        assert stats["doppler"].flops == pytest.approx(doppler_flops(params))

    def test_disabled_run_records_nothing(self):
        params = STAPParams.tiny()
        kernel_counters.reset()
        SequentialSTAP(params).process(cubes(params, 1)[0])
        assert kernel_counters.stats() == {}


class TestAchievedVsTable1:
    def test_paper_fraction_fields(self):
        params = STAPParams.tiny()
        ref = SequentialSTAP(params)
        with kernel_counters.collect():
            for cube in cubes(params, 3):
                ref.process(cube)
        table = achieved_vs_table1(kernel_counters, num_cpis=3)
        for kernel, row in table.items():
            assert row["calls"] >= 1
            assert row["flops_per_second"] > 0.0
            if kernel in PAPER_TABLE1:
                assert row["paper_flops_per_cpi"] == PAPER_TABLE1[kernel]
                assert row["paper_fraction"] == pytest.approx(
                    row["flops"] / (3 * PAPER_TABLE1[kernel])
                )

    def test_uses_singleton_by_default(self):
        kernel_counters.reset()
        kernel_counters.enable()
        kernel_counters.record("doppler", 1.0, 2e6)
        kernel_counters.disable()
        table = achieved_vs_table1(num_cpis=1)
        assert table["doppler"]["flops"] == pytest.approx(2e6)
